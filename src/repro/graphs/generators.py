"""Graph family generators.

The paper analyses ``NQ_k`` on paths, cycles and d-dimensional grids
(Section 3.3, Theorems 15-17, Appendix B) and compares its universally optimal
algorithms against existentially optimal ones whose worst cases are path-like
graphs with attached dense clusters (barbells, lollipops, brooms).  The
generators here produce every family used by the benchmarks, all with nodes
labelled ``0..n-1`` so that they can be fed directly to the HYBRID simulator
(whose HYBRID-model identifier space is exactly ``[n]``).
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.graphs.properties import is_connected

__all__ = [
    "GraphSpec",
    "generate_graph",
    "path_graph",
    "cycle_graph",
    "grid_graph",
    "torus_graph",
    "balanced_tree",
    "star_graph",
    "complete_graph",
    "erdos_renyi_graph",
    "random_regular_graph",
    "barbell_graph",
    "lollipop_graph",
    "caterpillar_graph",
    "broom_graph",
    "random_geometric_graph",
    "two_cluster_graph",
    "GRAPH_FAMILIES",
]


def _relabel_consecutive(graph: nx.Graph) -> nx.Graph:
    """Relabel nodes to ``0..n-1`` preserving edge data."""
    mapping = {node: index for index, node in enumerate(sorted(graph.nodes, key=str))}
    return nx.relabel_nodes(graph, mapping, copy=True)


def path_graph(n: int) -> nx.Graph:
    """Path ``P_n`` on ``n`` nodes; the canonical NQ_k = Theta(sqrt k) family."""
    if n < 1:
        raise ValueError("path needs at least one node")
    return nx.path_graph(n)


def cycle_graph(n: int) -> nx.Graph:
    """Cycle ``C_n`` on ``n`` nodes (n >= 3)."""
    if n < 3:
        raise ValueError("cycle needs at least three nodes")
    return nx.cycle_graph(n)


def grid_graph(side: int, dim: int = 2) -> nx.Graph:
    """d-dimensional grid graph with ``side**dim`` nodes (Definition 3.9).

    The d-fold Cartesian product of the ``side``-node path.  Theorem 16 predicts
    ``NQ_k = Theta(min(k^{1/(d+1)}, D))`` on these graphs.
    """
    if side < 1:
        raise ValueError("side must be positive")
    if dim < 1:
        raise ValueError("dim must be positive")
    grid = nx.grid_graph(dim=[side] * dim)
    return _relabel_consecutive(grid)


def torus_graph(side: int, dim: int = 2) -> nx.Graph:
    """d-dimensional torus (grid with wraparound); same NQ_k scaling as the grid."""
    if side < 3:
        raise ValueError("torus needs side >= 3")
    if dim < 1:
        raise ValueError("dim must be positive")
    torus = nx.grid_graph(dim=[side] * dim, periodic=True)
    return _relabel_consecutive(torus)


def balanced_tree(branching: int, height: int) -> nx.Graph:
    """Complete ``branching``-ary tree of the given height."""
    if branching < 1:
        raise ValueError("branching must be positive")
    if height < 0:
        raise ValueError("height must be non-negative")
    if branching == 1:
        return path_graph(height + 1)
    return nx.balanced_tree(branching, height)


def star_graph(n: int) -> nx.Graph:
    """Star on ``n`` nodes (one hub, n-1 leaves).  Diameter 2, NQ_k is O(1) for k <= n."""
    if n < 2:
        raise ValueError("star needs at least two nodes")
    return nx.star_graph(n - 1)


def complete_graph(n: int) -> nx.Graph:
    """Complete graph ``K_n``."""
    if n < 1:
        raise ValueError("complete graph needs at least one node")
    return nx.complete_graph(n)


def erdos_renyi_graph(n: int, p: float, seed: Optional[int] = None) -> nx.Graph:
    """Connected Erdos-Renyi ``G(n, p)``.

    Resamples (bounded number of times) and finally patches connectivity by
    joining components with single edges, so the result always satisfies the
    paper's connectivity assumption.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must lie in [0, 1]")
    rng = random.Random(seed)
    graph = nx.gnp_random_graph(n, p, seed=rng.randrange(2**31))
    attempts = 0
    while not is_connected(graph) and attempts < 5:
        graph = nx.gnp_random_graph(n, p, seed=rng.randrange(2**31))
        attempts += 1
    if not is_connected(graph):
        components = [sorted(c) for c in nx.connected_components(graph)]
        for first, second in zip(components, components[1:]):
            graph.add_edge(first[0], second[0])
    return graph


def random_regular_graph(n: int, degree: int, seed: Optional[int] = None) -> nx.Graph:
    """Random ``degree``-regular graph; a stand-in for expanders (NQ_k = O(log))."""
    if degree >= n:
        raise ValueError("degree must be smaller than n")
    if (n * degree) % 2 != 0:
        raise ValueError("n * degree must be even")
    rng = random.Random(seed)
    graph = nx.random_regular_graph(degree, n, seed=rng.randrange(2**31))
    attempts = 0
    while not is_connected(graph) and attempts < 10:
        graph = nx.random_regular_graph(degree, n, seed=rng.randrange(2**31))
        attempts += 1
    if not is_connected(graph):
        raise RuntimeError("failed to sample a connected random regular graph")
    return graph


def barbell_graph(clique_size: int, path_length: int) -> nx.Graph:
    """Two cliques joined by a path: the classic existential worst case.

    Prior HYBRID lower bounds (AHK+20, KS20) rely on graphs featuring an
    isolated long path; the barbell realises that structure while keeping
    plenty of nodes at both ends.
    """
    if clique_size < 3:
        raise ValueError("clique_size must be at least 3")
    if path_length < 0:
        raise ValueError("path_length must be non-negative")
    return nx.barbell_graph(clique_size, path_length)


def lollipop_graph(clique_size: int, path_length: int) -> nx.Graph:
    """A clique with a path attached (the 'lollipop')."""
    if clique_size < 3:
        raise ValueError("clique_size must be at least 3")
    if path_length < 0:
        raise ValueError("path_length must be non-negative")
    return nx.lollipop_graph(clique_size, path_length)


def caterpillar_graph(spine_length: int, legs_per_node: int) -> nx.Graph:
    """A path ('spine') where every spine node has ``legs_per_node`` leaves."""
    if spine_length < 1:
        raise ValueError("spine_length must be positive")
    if legs_per_node < 0:
        raise ValueError("legs_per_node must be non-negative")
    graph = nx.Graph()
    next_id = 0
    spine: List[int] = []
    for _ in range(spine_length):
        spine.append(next_id)
        graph.add_node(next_id)
        next_id += 1
    for u, v in zip(spine, spine[1:]):
        graph.add_edge(u, v)
    for s in spine:
        for _ in range(legs_per_node):
            graph.add_edge(s, next_id)
            next_id += 1
    return graph


def broom_graph(path_length: int, bristle_count: int) -> nx.Graph:
    """A path with ``bristle_count`` leaves attached to one end.

    A node at the far end of the handle has tiny balls for many radii, which
    makes NQ_k large; the bristly end has huge balls.  Useful for exercising the
    max over nodes in the definition of NQ_k.
    """
    if path_length < 1:
        raise ValueError("path_length must be positive")
    if bristle_count < 0:
        raise ValueError("bristle_count must be non-negative")
    graph = nx.path_graph(path_length)
    next_id = path_length
    for _ in range(bristle_count):
        graph.add_edge(path_length - 1, next_id)
        next_id += 1
    return graph


def random_geometric_graph(
    n: int, radius: float, seed: Optional[int] = None
) -> nx.Graph:
    """Connected random geometric graph in the unit square.

    Geometric graphs satisfy polynomial ball growth (Theorem 17 with d = 2), so
    they are a natural family on which NQ_k beats sqrt(k).
    """
    if n < 1:
        raise ValueError("n must be positive")
    rng = random.Random(seed)
    graph = nx.random_geometric_graph(n, radius, seed=rng.randrange(2**31))
    attempts = 0
    while not is_connected(graph) and attempts < 5:
        graph = nx.random_geometric_graph(n, radius, seed=rng.randrange(2**31))
        attempts += 1
    if not is_connected(graph):
        nodes = sorted(graph.nodes)
        components = [sorted(c) for c in nx.connected_components(graph)]
        for first, second in zip(components, components[1:]):
            graph.add_edge(first[0], second[0])
        graph.add_nodes_from(nodes)
    for node in graph.nodes:
        graph.nodes[node].pop("pos", None)
    return graph


def two_cluster_graph(cluster_size: int, bridge_length: int) -> nx.Graph:
    """Two dense clusters connected by a single long bridge path.

    This is the shape used by the node-communication lower bound (Appendix C):
    information held in one cluster must cross the bridge, and the nodes near
    the bridge have small balls, pushing NQ_k up.
    """
    if cluster_size < 2:
        raise ValueError("cluster_size must be at least 2")
    if bridge_length < 1:
        raise ValueError("bridge_length must be positive")
    graph = nx.Graph()
    left = list(range(cluster_size))
    for i in left:
        for j in left:
            if i < j:
                graph.add_edge(i, j)
    bridge = list(range(cluster_size, cluster_size + bridge_length))
    prev = left[0]
    for b in bridge:
        graph.add_edge(prev, b)
        prev = b
    right = list(
        range(cluster_size + bridge_length, 2 * cluster_size + bridge_length)
    )
    for i in right:
        for j in right:
            if i < j:
                graph.add_edge(i, j)
    graph.add_edge(prev, right[0])
    return graph


@dataclasses.dataclass(frozen=True)
class GraphSpec:
    """A declarative description of a benchmark graph.

    ``family`` names one of the entries of :data:`GRAPH_FAMILIES`; ``params``
    are forwarded to the corresponding generator.  Specs are hashable so they
    can key result tables.
    """

    family: str
    params: Tuple[Tuple[str, object], ...] = ()

    @staticmethod
    def of(family: str, **params: object) -> "GraphSpec":
        """Convenience constructor: ``GraphSpec.of("grid", side=8, dim=2)``."""
        return GraphSpec(family=family, params=tuple(sorted(params.items())))

    @property
    def kwargs(self) -> Dict[str, object]:
        return dict(self.params)

    def build(self) -> nx.Graph:
        """Instantiate the graph described by this spec."""
        return generate_graph(self)

    def label(self) -> str:
        """Short human-readable label used in benchmark tables."""
        if not self.params:
            return self.family
        inner = ",".join(f"{key}={value}" for key, value in self.params)
        return f"{self.family}({inner})"


GRAPH_FAMILIES: Dict[str, Callable[..., nx.Graph]] = {
    "path": path_graph,
    "cycle": cycle_graph,
    "grid": grid_graph,
    "torus": torus_graph,
    "tree": balanced_tree,
    "star": star_graph,
    "complete": complete_graph,
    "erdos_renyi": erdos_renyi_graph,
    "random_regular": random_regular_graph,
    "barbell": barbell_graph,
    "lollipop": lollipop_graph,
    "caterpillar": caterpillar_graph,
    "broom": broom_graph,
    "geometric": random_geometric_graph,
    "two_cluster": two_cluster_graph,
}


def generate_graph(spec: GraphSpec) -> nx.Graph:
    """Instantiate a :class:`GraphSpec`.

    Raises ``KeyError`` for unknown families so typos surface immediately.
    """
    if spec.family not in GRAPH_FAMILIES:
        known = ", ".join(sorted(GRAPH_FAMILIES))
        raise KeyError(f"unknown graph family {spec.family!r}; known: {known}")
    generator = GRAPH_FAMILIES[spec.family]
    graph = generator(**spec.kwargs)
    graph.graph["spec"] = spec
    return graph
