"""Unit tests for the sharded-planner building blocks.

Covers the bipartite-role union-find (:func:`token_components`), the
deterministic LPT bucket assignment (:func:`assign_buckets`), the ascending-
position round merge (:func:`merge_round_schedules`), the planner's
delegation/fallback decisions, ``REPRO_SHARD_WORKERS`` parsing
(:func:`resolve_shard_workers` / :func:`planner_from_env`) and the permanent
in-process degradation after a pool failure.
"""

from __future__ import annotations

import gc
import random

import pytest

from repro.simulator import _accel
from repro.simulator import engine as engine_module
from repro.simulator import sharding as sharding_module
from repro.simulator.config import resolve_shard_workers
from repro.simulator.engine import TokenPlane, install_planner, plan_token_rounds
from repro.simulator.sharding import (
    ShardedPlanner,
    WorkerPoolService,
    _ServiceLease,
    assign_buckets,
    merge_round_schedules,
    planner_from_env,
    shared_pool_service,
    token_components,
)

requires_numpy = pytest.mark.skipif(
    _accel.np is None, reason="NumPy not available; vectorised leg is inactive"
)


@pytest.fixture(params=["numpy", "python"])
def backend(request, monkeypatch):
    """Run the test body under both array backends."""
    if request.param == "python":
        monkeypatch.setattr(_accel, "np", None)
    elif _accel.np is None:
        pytest.skip("NumPy not available; vectorised leg is inactive")
    return request.param


def _plane(senders, receivers, words):
    return TokenPlane(
        senders, receivers, words, [("p", i) for i in range(len(words))]
    )


def _as_lists(shards):
    return [[int(position) for position in shard] for shard in shards]


# ----------------------------------------------------------------------
# token_components: the bipartite role graph
# ----------------------------------------------------------------------
def test_sender_and_receiver_roles_are_independent(backend):
    # Node 1 appears as a receiver of token 0 and as the sender of token 1;
    # its sent and received counters are separate, so the tokens must land
    # in *different* components.
    labels = token_components([0, 1], [1, 2])
    assert labels[0] != labels[1]


def test_shared_counters_are_coupled_transitively(backend):
    # (0->1), (2->1) share receiver 1; (2->3) shares sender 2 with (2->1):
    # all three tokens form one component.  (5->6) stays separate.
    labels = token_components([0, 2, 2, 5], [1, 1, 3, 6])
    assert labels[0] == labels[1] == labels[2]
    assert labels[3] != labels[0]


def test_component_labels_are_deterministic_root_keys(backend):
    # Roots are the smallest bipartite vertex key: sender s is vertex 2s,
    # receiver r is vertex 2r+1.
    assert token_components([0], [4]) == [0]       # min(0, 9) = 0
    assert token_components([4], [0]) == [1]       # min(8, 1) = 1
    # A 2-cycle still splits: (0->1) touches sent[0]/recv[1], (1->0) touches
    # sent[1]/recv[0] — no counter shared, so two components.
    assert token_components([0, 1], [1, 0]) == [0, 1]


@requires_numpy
def test_components_agree_across_backends(monkeypatch):
    rng = random.Random(11)
    senders = [rng.randrange(20) for _ in range(200)]
    receivers = [rng.randrange(20) for _ in range(200)]
    np = _accel.np
    from_numpy = token_components(
        np.asarray(senders, dtype=np.int64), np.asarray(receivers, dtype=np.int64)
    )
    monkeypatch.setattr(_accel, "np", None)
    assert token_components(senders, receivers) == from_numpy


# ----------------------------------------------------------------------
# assign_buckets: deterministic LPT
# ----------------------------------------------------------------------
def test_buckets_balance_by_component_size():
    # Components: label 7 x5 tokens, label 3 x3, label 9 x3, label 1 x1.
    labels = [7] * 5 + [3] * 3 + [9] * 3 + [1]
    buckets = assign_buckets(labels, 2)
    sizes = sorted(len(bucket) for bucket in buckets)
    assert sizes == [6, 6]  # LPT: 5+1 vs 3+3
    # Positions within each bucket are ascending and globally disjoint.
    for bucket in buckets:
        assert bucket == sorted(bucket)
    assert sorted(p for bucket in buckets for p in bucket) == list(range(12))


def test_bucket_assignment_is_deterministic_and_drops_empties():
    labels = [4, 4, 8, 8, 2]
    first = assign_buckets(labels, 7)
    second = assign_buckets(labels, 7)
    assert first == second
    assert len(first) == 3  # only 3 components; 4 empty buckets dropped
    single = assign_buckets(labels, 1)
    assert single == [list(range(5))]


# ----------------------------------------------------------------------
# merge_round_schedules: ascending-position union per round
# ----------------------------------------------------------------------
def test_merge_interleaves_rounds_in_position_order(backend):
    merged = merge_round_schedules([[[0, 2], [5]], [[1], [4], [7]]])
    assert [list(map(int, shard)) for shard in merged] == [[0, 1, 2], [4, 5], [7]]
    assert merge_round_schedules([]) == []


@requires_numpy
def test_merge_handles_numpy_chunks():
    np = _accel.np
    merged = merge_round_schedules(
        [
            [np.asarray([0, 3], dtype=np.int64)],
            [np.asarray([1], dtype=np.int64), np.asarray([2], dtype=np.int64)],
        ]
    )
    assert [shard.tolist() for shard in merged] == [[0, 1, 3], [2]]


# ----------------------------------------------------------------------
# Planner delegation decisions
# ----------------------------------------------------------------------
def test_planner_rejects_nonpositive_workers():
    with pytest.raises(ValueError, match="workers"):
        ShardedPlanner(0)


def test_small_and_empty_planes_delegate(backend):
    planner = ShardedPlanner(4, use_processes=False)  # default min_tokens=256
    assert planner.plan(_plane([], [], []), 8) == []
    plane = _plane([0, 1, 2], [3, 4, 5], [9, 9, 9])
    assert _as_lists(planner.plan(plane, 8, 1)) == _as_lists(
        plan_token_rounds(plane, 8, 1)
    )
    assert planner.sharded_plans == 0


def test_single_worker_always_delegates(backend):
    plane = _plane([0] * 40, [1] * 40, [5] * 40)
    planner = ShardedPlanner(1, use_processes=False, min_tokens=1)
    assert _as_lists(planner.plan(plane, 8)) == _as_lists(plan_token_rounds(plane, 8))
    assert planner.sharded_plans == 0


def test_oversized_token_forces_the_serial_fallback(backend):
    # Two disjoint congested pairs plus one oversized token: partitionable
    # in shape, but the oversized branch is global, so the planner delegates.
    senders = [0] * 6 + [2] * 6 + [4]
    receivers = [1] * 6 + [3] * 6 + [5]
    words = [5] * 12 + [10_000]
    plane = _plane(senders, receivers, words)
    planner = ShardedPlanner(2, use_processes=False, min_tokens=1)
    assert _as_lists(planner.plan(plane, 8, 1)) == _as_lists(
        plan_token_rounds(plane, 8, 1)
    )
    assert planner.sharded_plans == 0


@requires_numpy
def test_uncongested_plane_takes_the_single_shard_fast_path():
    plane = _plane([0, 2, 4, 6], [1, 3, 5, 7], [2, 2, 2, 2])
    planner = ShardedPlanner(4, use_processes=False, min_tokens=1)
    shards = planner.plan(plane, 8, 1)
    assert _as_lists(shards) == [[0, 1, 2, 3]]
    assert planner.sharded_plans == 0


# ----------------------------------------------------------------------
# Environment resolution
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "raw,expected",
    [(None, 1), ("", 1), ("  ", 1), ("garbage", 1), ("0", 1), ("-3", 1), ("4", 4)],
)
def test_resolve_shard_workers_parsing(monkeypatch, raw, expected):
    if raw is None:
        monkeypatch.delenv("REPRO_SHARD_WORKERS", raising=False)
    else:
        monkeypatch.setenv("REPRO_SHARD_WORKERS", raw)
    assert resolve_shard_workers() == expected


def test_planner_from_env(monkeypatch):
    monkeypatch.delenv("REPRO_SHARD_WORKERS", raising=False)
    assert planner_from_env() is None
    monkeypatch.setenv("REPRO_SHARD_WORKERS", "1")
    assert planner_from_env() is None
    monkeypatch.setenv("REPRO_SHARD_WORKERS", "3")
    planner = planner_from_env()
    try:
        assert isinstance(planner, ShardedPlanner)
        assert planner.workers == 3
    finally:
        planner.close()


def test_workers_default_reads_environment(monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_WORKERS", "5")
    planner = ShardedPlanner()
    assert planner.workers == 5


# ----------------------------------------------------------------------
# Pool failure: permanent, schedule-preserving degradation
# ----------------------------------------------------------------------
@requires_numpy
def test_pool_failure_degrades_to_in_process_permanently(monkeypatch):
    senders = [0] * 10 + [2] * 10
    receivers = [1] * 10 + [3] * 10
    words = [5] * 20
    plane = _plane(senders, receivers, words)
    planner = ShardedPlanner(2, use_processes=True, min_tokens=1)
    calls = []

    def broken_pool(*args, **kwargs):
        calls.append(1)
        raise OSError("synthetic pool failure")

    monkeypatch.setattr(planner, "_plan_buckets_pool", broken_pool)
    expected = _as_lists(plan_token_rounds(plane, 8, 1))
    assert _as_lists(planner.plan(plane, 8, 1)) == expected
    assert planner._pool_broken
    assert len(calls) == 1
    # The degradation is permanent: the pool is never tried again.
    assert _as_lists(planner.plan(plane, 8, 1)) == expected
    assert len(calls) == 1
    assert planner.process_plans == 0
    assert planner.sharded_plans == 2


def test_close_is_idempotent_and_keeps_planner_usable(backend):
    planner = ShardedPlanner(2, use_processes=False, min_tokens=1)
    planner.close()
    planner.close()
    plane = _plane([0] * 8 + [2] * 8, [1] * 8 + [3] * 8, [5] * 16)
    assert _as_lists(planner.plan(plane, 8)) == _as_lists(plan_token_rounds(plane, 8))


# ----------------------------------------------------------------------
# WorkerPoolService lifecycle: leases, growth, atexit, GC
# ----------------------------------------------------------------------
class _StubPool:
    """Stands in for a multiprocessing pool: records disposal."""

    def __init__(self):
        self.terminated = False
        self.joined = False

    def terminate(self):
        self.terminated = True

    def join(self):
        self.joined = True


def test_service_refcounts_dispose_the_pool_on_last_release():
    service = WorkerPoolService(2)
    stub = _StubPool()
    service._pool = stub
    assert service.acquire() is service
    service.acquire()
    assert service.refs == 2
    service.release()
    assert service.refs == 1 and service.pool_alive
    service.release()
    assert service.refs == 0
    assert not service.pool_alive
    assert stub.terminated and stub.joined
    # The service object stays reusable after full release.
    service.acquire()
    assert service.refs == 1
    service.release()


def test_service_close_is_idempotent():
    service = WorkerPoolService(1)
    stub = _StubPool()
    service._pool = stub
    service.close()
    service.close()
    assert stub.terminated and not service.pool_alive


def test_service_grow_disposes_a_smaller_live_pool():
    service = WorkerPoolService(2)
    stub = _StubPool()
    service._pool = stub
    service.grow(4)
    assert service.workers == 4
    assert stub.terminated and not service.pool_alive
    # Shrinking is a no-op: an existing larger pool keeps serving.
    other = _StubPool()
    service._pool = other
    service.grow(3)
    assert service.workers == 4
    assert not other.terminated and service.pool_alive
    service.close()


def test_service_rejects_nonpositive_workers():
    with pytest.raises(ValueError):
        WorkerPoolService(0)


def test_shared_service_is_created_grown_and_registered_atexit(monkeypatch):
    hooks = []
    monkeypatch.setattr(sharding_module, "_shared_service", None)
    monkeypatch.setattr(sharding_module, "_atexit_registered", False)
    monkeypatch.setattr(
        sharding_module.atexit, "register", lambda hook: hooks.append(hook)
    )
    first = shared_pool_service(2)
    assert first.refs == 1 and first.workers == 2
    assert hooks == [sharding_module._shutdown_shared_service]
    # A second acquisition reuses (and grows) the same service — and does
    # not re-register the exit hook.
    second = shared_pool_service(4)
    assert second is first
    assert second.refs == 2 and second.workers == 4
    assert len(hooks) == 1
    stub = _StubPool()
    first._pool = stub
    # The exit hook tears the pool down even with leases outstanding.
    hooks[0]()
    assert stub.terminated and not first.pool_alive
    first.release()
    first.release()
    assert first.refs == 0


def test_lease_releases_exactly_once():
    service = WorkerPoolService(2)
    service.acquire()
    lease = _ServiceLease(service)
    lease.release()
    lease.release()
    assert service.refs == 0


def test_planner_close_then_gc_releases_the_lease_once():
    service = WorkerPoolService(2)
    planner = ShardedPlanner(2, use_processes=True, pool_service=service)
    assert planner._service() is service
    assert service.refs == 1
    planner.close()
    assert service.refs == 0
    planner.close()  # idempotent
    assert service.refs == 0
    # After close the planner re-leases on demand.
    assert planner._service() is service
    assert service.refs == 1
    del planner
    gc.collect()
    assert service.refs == 0


def test_reinstalling_a_planner_over_a_live_pool_does_not_leak(monkeypatch):
    monkeypatch.setattr(
        engine_module, "_active_planner", engine_module._active_planner
    )
    monkeypatch.setattr(
        engine_module, "_env_planner_resolved", engine_module._env_planner_resolved
    )
    service = WorkerPoolService(2)
    stub = _StubPool()
    service._pool = stub
    first = ShardedPlanner(2, use_processes=True, pool_service=service)
    first._service()
    install_planner(first)
    assert service.refs == 1
    # Re-install a replacement while the first planner's lease is live.
    second = ShardedPlanner(2, use_processes=True, pool_service=service)
    second._service()
    install_planner(second)
    assert service.refs == 2
    # Dropping the displaced planner (no explicit close) must release its
    # lease via the GC finalizer — the pool survives for the replacement.
    del first
    gc.collect()
    assert service.refs == 1
    assert service.pool_alive
    install_planner(None)
    second.close()
    assert service.refs == 0
    assert stub.terminated and not service.pool_alive


def test_delivery_engine_is_cached_and_rides_the_planner():
    planner = ShardedPlanner(3, use_processes=False)
    engine = planner.delivery()
    assert planner.delivery() is engine
    assert engine.planner is planner
    assert engine.workers == 3
