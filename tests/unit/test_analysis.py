"""Unit tests for the analysis layer: theory predictions, exponent fitting,
table rendering, and the experiment harness functions."""

import math

import pytest

from repro.analysis.comparison import fit_power_law_exponent, geometric_mean, ratio_series
from repro.analysis.tables import ExperimentRow, render_table, rows_to_markdown
from repro.analysis.theory import TheoryPredictions
from repro.analysis.experiments import (
    default_benchmark_specs,
    fit_fig1_exponent,
    run_fig1_ksp_point,
    run_fig2_broadcast_structure,
    run_nq_family_point,
    run_table1_dissemination,
    run_table1_unicast,
    run_table3_klsp,
    run_table4_sssp,
    scatter_tokens,
)
from repro.graphs.generators import GraphSpec, generate_graph


class TestTheoryPredictions:
    def test_upper_bound(self):
        assert TheoryPredictions.nq_upper_bound(100, 5) == 5
        assert TheoryPredictions.nq_upper_bound(16, 100) == 4

    def test_lower_bound(self):
        assert TheoryPredictions.nq_lower_bound(100, 30, 100) == pytest.approx(
            math.sqrt(30 * 100 / 300)
        )
        with pytest.raises(ValueError):
            TheoryPredictions.nq_lower_bound(10, 5, 0)

    def test_growth_bound(self):
        assert TheoryPredictions.nq_growth_bound(3, 4) == pytest.approx(36.0)
        with pytest.raises(ValueError):
            TheoryPredictions.nq_growth_bound(3, 0.5)

    def test_family_formulas(self):
        assert TheoryPredictions.nq_path_or_cycle(49, 1000) == pytest.approx(7.0)
        assert TheoryPredictions.nq_grid(1000, 2, 10**6) == pytest.approx(10.0)
        assert TheoryPredictions.nq_grid(10**6, 3, 10**6) == pytest.approx(
            (10**6) ** 0.25
        )
        with pytest.raises(ValueError):
            TheoryPredictions.nq_grid(10, 0, 10)

    def test_fig1_exponents(self):
        assert TheoryPredictions.fig1_expected_exponent_const_approx(1.0) == 0.5
        assert TheoryPredictions.fig1_expected_exponent_exact_prior(0.2) == pytest.approx(1 / 3)
        assert TheoryPredictions.fig1_expected_exponent_exact_prior(1.0) == 0.5

    def test_polylog_ratio_check(self):
        assert TheoryPredictions.ratio_is_within_polylog(100, 90, 1000)
        assert not TheoryPredictions.ratio_is_within_polylog(10**9, 1, 10)


class TestComparison:
    def test_fit_recovers_known_exponent(self):
        xs = [10, 100, 1000, 10000]
        ys = [3 * x**0.5 for x in xs]
        exponent, constant = fit_power_law_exponent(xs, ys)
        assert exponent == pytest.approx(0.5, abs=1e-6)
        assert constant == pytest.approx(3.0, rel=1e-6)

    def test_fit_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_power_law_exponent([1], [1])

    def test_fit_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            fit_power_law_exponent([1, 2], [1])

    def test_ratio_series(self):
        assert ratio_series([2, 4], [1, 2]) == [2.0, 2.0]
        assert ratio_series([1], [0]) == [math.inf]
        with pytest.raises(ValueError):
            ratio_series([1], [1, 2])

    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        assert geometric_mean([]) == 0.0


class TestTables:
    def test_render_table_alignment(self):
        rows = [
            ExperimentRow({"graph": "path", "rounds": 12}),
            ExperimentRow({"graph": "grid(8x8)", "rounds": 3.5}),
        ]
        text = render_table(rows, title="Table X")
        assert "Table X" in text
        assert "graph" in text and "rounds" in text
        assert "path" in text and "grid(8x8)" in text

    def test_render_empty(self):
        assert "(no rows)" in render_table([], title="Empty")

    def test_markdown_output(self):
        rows = [ExperimentRow({"a": 1, "b": "x"})]
        md = rows_to_markdown(rows, title="T")
        assert md.splitlines()[0] == "### T"
        assert "| a | b |" in md

    def test_union_of_columns(self):
        rows = [ExperimentRow({"a": 1}), ExperimentRow({"b": 2})]
        text = render_table(rows)
        assert "a" in text and "b" in text


class TestExperimentHarness:
    def test_default_specs(self):
        small = default_benchmark_specs("small")
        assert len(small) >= 4
        medium = default_benchmark_specs("medium")
        assert len(medium) >= len(small)
        with pytest.raises(ValueError):
            default_benchmark_specs("huge")

    def test_scatter_tokens(self):
        g = generate_graph(GraphSpec.of("path", n=20))
        tokens = scatter_tokens(g, 10, seed=0)
        assert sum(len(v) for v in tokens.values()) == 10
        concentrated = scatter_tokens(g, 10, concentrated=True)
        assert len(concentrated) == 1

    def test_table1_row_contains_required_columns(self):
        row = run_table1_dissemination(GraphSpec.of("path", n=36), 18, seed=0)
        assert row["k"] == 18
        assert row["NQ_k"] >= 1
        assert row["rounds (Thm 1, total)"] > 0
        assert row["capacity violations"] == 0

    def test_table1_unicast_row(self):
        row = run_table1_unicast(GraphSpec.of("grid", side=6, dim=2), 5, 2, seed=0)
        assert row["k"] == 5 and row["l"] == 2
        assert row["rounds (Thm 3, total)"] > 0

    def test_table3_row_stretch_within_bound(self):
        row = run_table3_klsp(GraphSpec.of("grid", side=5, dim=2), 4, 2, seed=0)
        assert row["stretch measured"] <= row["stretch bound"] + 1e-6

    def test_table4_row_stretch_within_bound(self):
        row = run_table4_sssp(GraphSpec.of("path", n=30), seed=0)
        assert row["stretch measured"] <= row["stretch bound"] + 1e-6

    def test_fig1_point_and_exponent_fit(self):
        spec = GraphSpec.of("grid", side=6, dim=2)
        points = [run_fig1_ksp_point(spec, beta, seed=1) for beta in (0.3, 0.6, 0.9)]
        assert all(point["rounds (Thm 14, total)"] > 0 for point in points)
        exponent = fit_fig1_exponent(points)
        assert -0.5 <= exponent <= 1.5

    def test_fig2_structure_row_obeys_lemma_3_5(self):
        row = run_fig2_broadcast_structure(GraphSpec.of("grid", side=6, dim=2), 36)
        assert row["max weak diameter"] <= row["weak diameter bound"]
        assert row["clusters"] >= 1

    def test_nq_family_point_matches_theory_within_constant(self):
        row = run_nq_family_point(GraphSpec.of("path", n=80), 40)
        assert row["NQ_k measured"] <= 2 * row["NQ_k predicted"] + 1
        assert row["NQ_k measured"] >= 0.25 * row["NQ_k predicted"]
