"""Closed-form theory predictions (Section 3.2, 3.3, Appendix B).

These are the quantities the benchmarks plot the measured values against:

* Lemma 3.6:  ``sqrt(D k / 3n) < NQ_k <= min(D, sqrt(k))``.
* Lemma 3.7:  ``NQ_{alpha k} <= 6 sqrt(alpha) NQ_k``.
* Theorem 15: on paths and cycles ``NQ_k = Theta(min(sqrt k, D))``.
* Theorem 16: on d-dimensional grids ``NQ_k = Theta(min(k^{1/(d+1)}, D))``.
* Theorem 17: ball growth ``|B_r(v)| = Omega(r^d)`` implies
  ``NQ_k = O(min(D, k^{1/(d+1)}))``.
"""

from __future__ import annotations

import math
from typing import Optional

__all__ = ["TheoryPredictions"]


class TheoryPredictions:
    """Static closed-form predictions used by tests and benchmark tables."""

    # ------------------------------------------------------------------
    # Lemma 3.6 bounds, valid on every graph.
    # ------------------------------------------------------------------
    @staticmethod
    def nq_upper_bound(k: float, diameter: int) -> float:
        """``NQ_k <= min(D, sqrt(k))`` (Lemma 3.6)."""
        return min(float(diameter), math.sqrt(max(k, 0.0)))

    @staticmethod
    def nq_lower_bound(k: float, diameter: int, n: int) -> float:
        """``NQ_k > sqrt(D k / 3 n)`` (Lemma 3.6)."""
        if n <= 0:
            raise ValueError("n must be positive")
        return math.sqrt(diameter * max(k, 0.0) / (3.0 * n))

    @staticmethod
    def nq_growth_bound(nq_k: float, alpha: float) -> float:
        """``NQ_{alpha k} <= 6 sqrt(alpha) NQ_k`` for alpha >= 1 (Lemma 3.7)."""
        if alpha < 1:
            raise ValueError("alpha must be at least 1")
        return 6.0 * math.sqrt(alpha) * nq_k

    # ------------------------------------------------------------------
    # Special families (Theorems 15 - 17).
    # ------------------------------------------------------------------
    @staticmethod
    def nq_path_or_cycle(k: float, diameter: int) -> float:
        """Theorem 15: ``NQ_k = Theta(min(sqrt k, D))`` on paths and cycles."""
        return min(math.sqrt(max(k, 0.0)), float(diameter))

    @staticmethod
    def nq_grid(k: float, dim: int, diameter: int) -> float:
        """Theorem 16: ``NQ_k = Theta(min(k^{1/(d+1)}, D))`` on d-dim grids."""
        if dim < 1:
            raise ValueError("dim must be positive")
        return min(max(k, 0.0) ** (1.0 / (dim + 1)), float(diameter))

    @staticmethod
    def nq_polynomial_growth(k: float, dim: int, diameter: int) -> float:
        """Theorem 17: same shape as the grid bound for ball growth Omega(r^d)."""
        return TheoryPredictions.nq_grid(k, dim, diameter)

    # ------------------------------------------------------------------
    # Figure 1 axes: exponents.
    # ------------------------------------------------------------------
    @staticmethod
    def fig1_expected_exponent_const_approx(beta: float) -> float:
        """Figure 1: for k = n^beta sources, Theorem 14 gives rounds n^{beta/2}
        for constant-stretch k-SSP (delta = beta / 2)."""
        return beta / 2.0

    @staticmethod
    def fig1_expected_exponent_exact_prior(beta: float) -> float:
        """Figure 1: prior exact k-SSP [CHLP21a]: delta = max(1/3, beta/2)."""
        return max(1.0 / 3.0, beta / 2.0)

    @staticmethod
    def ratio_is_within_polylog(
        measured: float, predicted: float, n: int, *, polylog_power: int = 3, slack: float = 8.0
    ) -> bool:
        """Whether measured/predicted lies within ``slack * log^power n`` both ways.

        This is the operational meaning of the paper's eO()/eOmega() statements
        on finite instances, used by the property tests.
        """
        if predicted <= 0 or measured <= 0:
            return measured == predicted
        log_n = max(2.0, math.log2(max(n, 2)))
        allowance = slack * (log_n**polylog_power)
        ratio = measured / predicted
        return (1.0 / allowance) <= ratio <= allowance
