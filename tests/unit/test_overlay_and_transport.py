"""Unit tests for virtual-tree overlays (Lemmas 4.3-4.6), load balancing
(Lemma 4.1) and the throttled global transport."""

import math

import pytest

from repro.core.load_balancing import balance_items, cluster_load_balance
from repro.core.overlay import (
    aggregate_via_tree,
    basic_aggregation,
    basic_dissemination,
    broadcast_via_tree,
    build_virtual_tree,
    build_virtual_tree_on_subset,
)
from repro.core.transport import GlobalTransfer, throttled_global_exchange
from repro.graphs.generators import grid_graph, path_graph
from repro.simulator.config import ModelConfig, log2_ceil
from repro.simulator.network import HybridSimulator


def make_sim(graph=None, hybrid0=True, seed=0, **kwargs):
    graph = graph if graph is not None else grid_graph(5, 2)
    config = ModelConfig.hybrid0() if hybrid0 else ModelConfig.hybrid()
    return HybridSimulator(graph, config, seed=seed, **kwargs)


class TestVirtualTree:
    def test_tree_spans_all_nodes(self):
        sim = make_sim()
        tree = build_virtual_tree(sim)
        assert sorted(tree.nodes, key=str) == sorted(sim.nodes, key=str)

    def test_tree_depth_is_logarithmic(self):
        sim = make_sim(path_graph(64))
        tree = build_virtual_tree(sim)
        assert tree.depth <= log2_ceil(64)

    def test_tree_degree_is_constant(self):
        sim = make_sim(path_graph(100))
        tree = build_virtual_tree(sim)
        assert tree.max_degree() <= 3

    def test_tree_parent_child_consistency(self):
        sim = make_sim()
        tree = build_virtual_tree(sim)
        for node in tree.nodes:
            for child in tree.children[node]:
                assert tree.parent[child] == node
        assert tree.parent[tree.root] is None

    def test_tree_members_know_relatives_ids(self):
        sim = make_sim()
        tree = build_virtual_tree(sim)
        for node in tree.nodes:
            relatives = list(tree.children[node])
            if tree.parent[node] is not None:
                relatives.append(tree.parent[node])
            for relative in relatives:
                assert sim.knows_id(node, sim.id_of(relative))

    def test_tree_construction_charges_rounds(self):
        sim = make_sim()
        build_virtual_tree(sim)
        assert sim.metrics.charged_rounds > 0

    def test_subset_tree_contains_only_subset(self):
        sim = make_sim(grid_graph(6, 2))
        subset = [0, 5, 10, 15, 20, 25, 30, 35]
        tree = build_virtual_tree_on_subset(sim, subset)
        assert sorted(tree.nodes) == sorted(subset)

    def test_subset_tree_rejects_empty(self):
        sim = make_sim()
        with pytest.raises(ValueError):
            build_virtual_tree_on_subset(sim, [])

    def test_levels_partition_nodes(self):
        sim = make_sim(path_graph(31))
        tree = build_virtual_tree(sim)
        flattened = [node for level in tree.levels() for node in level]
        assert sorted(flattened, key=str) == sorted(tree.nodes, key=str)


class TestTreeAggregationAndBroadcast:
    def test_sum_aggregation_reaches_root(self):
        sim = make_sim()
        tree = build_virtual_tree(sim)
        values = {v: 1 for v in sim.nodes}
        total = aggregate_via_tree(sim, tree, values, lambda a, b: a + b)
        assert total == sim.n

    def test_min_aggregation(self):
        sim = make_sim()
        tree = build_virtual_tree(sim)
        values = {v: sim.id_of(v) for v in sim.nodes}
        result = aggregate_via_tree(sim, tree, values, min)
        assert result == min(sim.id_of(v) for v in sim.nodes)

    def test_aggregation_with_missing_values(self):
        sim = make_sim()
        tree = build_virtual_tree(sim)
        values = {v: 5 for v in list(sim.nodes)[:3]}
        result = aggregate_via_tree(sim, tree, values, lambda a, b: a + b)
        assert result == 15

    def test_broadcast_reaches_every_node(self):
        sim = make_sim()
        tree = build_virtual_tree(sim)
        received = broadcast_via_tree(sim, tree, "announcement")
        assert set(received) == set(sim.nodes)
        assert all(value == "announcement" for value in received.values())

    def test_basic_aggregation_lemma_4_4(self):
        sim = make_sim()
        values = {v: v if isinstance(v, int) else 0 for v in sim.nodes}
        result = basic_aggregation(sim, values, max)
        assert result == max(values.values())

    def test_basic_dissemination_lemma_4_4(self):
        sim = make_sim()
        source = sim.nodes[7]
        received = basic_dissemination(sim, source, ("token", 42))
        assert all(received[v] == ("token", 42) for v in sim.nodes)

    def test_tree_communication_respects_global_budget(self):
        sim = make_sim(grid_graph(6, 2))
        values = {v: 1 for v in sim.nodes}
        basic_aggregation(sim, values, lambda a, b: a + b)
        assert sim.metrics.capacity_violations == 0

    def test_round_cost_is_polylogarithmic(self):
        sim = make_sim(path_graph(64))
        values = {v: 1 for v in sim.nodes}
        basic_aggregation(sim, values, lambda a, b: a + b)
        log_n = log2_ceil(64)
        # Lemma 4.4: eO(1) rounds; with our constants that is <= ~4 log^2 n.
        assert sim.metrics.total_rounds <= 6 * log_n * log_n


class TestLoadBalancing:
    def test_balanced_allocation_bound(self):
        members = list(range(5))
        items = {0: list(range(17))}
        allocation = balance_items(members, items)
        quota = math.ceil(17 / 5)
        assert all(len(allocation[m]) <= quota for m in members)
        assert sum(len(v) for v in allocation.values()) == 17

    def test_items_preserved_exactly(self):
        members = ["a", "b", "c"]
        items = {"a": [1, 2], "b": [3], "c": [4, 5, 6]}
        allocation = balance_items(members, items)
        flat = sorted(item for bucket in allocation.values() for item in bucket)
        assert flat == [1, 2, 3, 4, 5, 6]

    def test_empty_pool(self):
        allocation = balance_items([1, 2], {})
        assert allocation == {1: [], 2: []}

    def test_rejects_empty_members(self):
        with pytest.raises(ValueError):
            balance_items([], {1: [1]})

    def test_deterministic(self):
        members = list(range(4))
        items = {0: list(range(10))}
        assert balance_items(members, items) == balance_items(members, items)

    def test_cluster_load_balance_charges_2d_rounds(self):
        sim = make_sim()
        members = sim.nodes[:6]
        allocation = cluster_load_balance(sim, members, {members[0]: [1, 2, 3]}, weak_diameter=4)
        assert sum(len(v) for v in allocation.values()) == 3
        assert sim.metrics.charged_rounds == 8


class TestThrottledTransport:
    def test_all_transfers_delivered(self):
        sim = make_sim(hybrid0=False)
        transfers = [
            GlobalTransfer(sender=0, receiver=v, payload=("x", v), tag="t")
            for v in sim.nodes
            if v != 0
        ]
        delivered = throttled_global_exchange(sim, transfers)
        assert sum(len(v) for v in delivered.values()) == len(transfers)

    def test_schedule_respects_send_budget(self):
        sim = make_sim(hybrid0=False)
        budget = sim.global_budget_words()
        transfers = [
            GlobalTransfer(sender=0, receiver=(v % (sim.n - 1)) + 1, payload=i)
            for i, v in enumerate(range(4 * budget))
        ]
        throttled_global_exchange(sim, transfers)
        assert sim.metrics.capacity_violations == 0
        # One sender with 4x budget worth of single-word messages needs >= 4 rounds.
        assert sim.metrics.measured_rounds >= 4

    def test_schedule_respects_receive_budget(self):
        sim = make_sim(hybrid0=False)
        budget = sim.global_budget_words()
        transfers = [
            GlobalTransfer(sender=s, receiver=0, payload=1)
            for s in sim.nodes
            if s != 0
            for _ in range(2)
        ]
        throttled_global_exchange(sim, transfers)
        assert sim.metrics.capacity_violations == 0
        assert sim.metrics.measured_rounds >= math.ceil(len(transfers) / budget)

    def test_empty_transfer_list(self):
        sim = make_sim(hybrid0=False)
        assert throttled_global_exchange(sim, []) == {}
        assert sim.metrics.measured_rounds == 0

    def test_max_rounds_guard(self):
        sim = make_sim(hybrid0=False)
        transfers = [
            GlobalTransfer(sender=0, receiver=1, payload=i) for i in range(200)
        ]
        with pytest.raises(RuntimeError):
            throttled_global_exchange(sim, transfers, max_rounds=1)
