"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.graphs.generators import (
    GraphSpec,
    barbell_graph,
    cycle_graph,
    grid_graph,
    path_graph,
)
from repro.graphs.weighted import assign_random_weights, unit_weights
from repro.simulator.config import ModelConfig
from repro.simulator.network import HybridSimulator


@pytest.fixture
def small_path():
    """A 20-node path (the canonical high-NQ_k family)."""
    return path_graph(20)


@pytest.fixture
def small_cycle():
    return cycle_graph(20)


@pytest.fixture
def small_grid():
    """A 5x5 grid."""
    return grid_graph(5, 2)


@pytest.fixture
def medium_grid():
    """An 8x8 grid, large enough for clustering to be non-trivial."""
    return grid_graph(8, 2)


@pytest.fixture
def small_barbell():
    return barbell_graph(5, 6)


@pytest.fixture
def weighted_grid():
    graph = grid_graph(5, 2)
    return assign_random_weights(graph, max_weight=9, seed=3)


@pytest.fixture
def hybrid_sim(small_grid):
    """HYBRID simulator (dense identifiers) over the 5x5 grid."""
    return HybridSimulator(small_grid, ModelConfig.hybrid(), seed=0)


@pytest.fixture
def hybrid0_sim(small_grid):
    """HYBRID_0 simulator (sparse identifiers) over the 5x5 grid."""
    return HybridSimulator(small_grid, ModelConfig.hybrid0(), seed=0)


@pytest.fixture
def rng():
    return random.Random(1234)
