"""Throttled global-mode transfers (legacy per-message path).

Several algorithms (the cluster-tree converge-cast of Theorem 1, the
helper/intermediate relaying of Theorem 3, the skeleton scheduling of
Lemma 9.3) need to move a batch of point-to-point messages through the global
network while respecting the per-node, per-round capacity ``gamma`` on both the
sending and the receiving side.  :func:`throttled_global_exchange` schedules an
arbitrary batch of (sender, receiver, payload) triples over as many rounds as
needed: in each round it greedily picks messages whose sender and receiver both
still have budget left, sends them, and advances the round.  The number of
rounds it takes is exactly the congestion-limited quantity the paper reasons
about (max over nodes of words sent or received, divided by gamma, up to the
greedy scheduling constant).

This is the *legacy* engine: it submits one ``global_send_to_node`` per
message and re-estimates payload sizes on every scheduling attempt.  Hot paths
should use :func:`repro.simulator.engine.batched_global_exchange`, which
implements the identical greedy schedule (same shards, same round counts) over
the simulator's batch API; this module is kept for small-scale callers and as
the comparison baseline for the equivalence tests and speedup benchmarks.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict, deque
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.simulator.messages import payload_words
from repro.simulator.network import HybridSimulator

Node = Hashable

__all__ = ["GlobalTransfer", "throttled_global_exchange"]


@dataclasses.dataclass(frozen=True)
class GlobalTransfer:
    """One point-to-point global message awaiting scheduling."""

    sender: Node
    receiver: Node
    payload: Any
    tag: Optional[str] = None

    @property
    def words(self) -> int:
        size = payload_words(self.payload)
        if self.tag is not None:
            size += payload_words(self.tag)
        return size


def throttled_global_exchange(
    simulator: HybridSimulator,
    transfers: Sequence[GlobalTransfer],
    *,
    max_rounds: Optional[int] = None,
) -> Dict[Node, List[Any]]:
    """Deliver all ``transfers`` over the global mode without exceeding capacity.

    Returns a mapping ``receiver -> list of payloads`` in delivery order.
    Raises ``RuntimeError`` if ``max_rounds`` is given and the schedule would
    exceed it (a safety net against accidental quadratic blow-ups in tests).
    """
    budget = simulator.global_budget_words()
    pending: deque = deque(transfers)
    delivered: Dict[Node, List[Any]] = defaultdict(list)
    rounds_used = 0

    while pending:
        if max_rounds is not None and rounds_used >= max_rounds:
            raise RuntimeError(
                f"throttled exchange exceeded the allowed {max_rounds} rounds "
                f"with {len(pending)} transfers left"
            )
        sent_words: Dict[Node, int] = defaultdict(int)
        received_words: Dict[Node, int] = defaultdict(int)
        deferred: deque = deque()
        receivers_this_round: List[Tuple[Node, Optional[str]]] = []
        scheduled_any = False

        while pending:
            transfer = pending.popleft()
            words = transfer.words
            if (
                sent_words[transfer.sender] + words <= budget
                and received_words[transfer.receiver] + words <= budget
            ):
                simulator.global_send_to_node(
                    transfer.sender, transfer.receiver, transfer.payload, transfer.tag
                )
                sent_words[transfer.sender] += words
                received_words[transfer.receiver] += words
                receivers_this_round.append((transfer.receiver, transfer.tag))
                scheduled_any = True
            else:
                deferred.append(transfer)

        if not scheduled_any and deferred:
            # Every remaining transfer is individually larger than the budget;
            # send them one at a time anyway (a single oversized message is the
            # sender's problem, and the simulator will flag it).
            transfer = deferred.popleft()
            simulator.global_send_to_node(
                transfer.sender, transfer.receiver, transfer.payload, transfer.tag
            )
            receivers_this_round.append((transfer.receiver, transfer.tag))

        simulator.advance_round()
        rounds_used += 1
        seen_receivers = {receiver for receiver, _ in receivers_this_round}
        for receiver in seen_receivers:
            for message in simulator.global_inbox(receiver):
                delivered[receiver].append(message.payload)
        pending = deferred

    return dict(delivered)
