"""Identifier-knowledge tracking for HYBRID_0.

In HYBRID_0 (Section 1.3) a node may only address global messages to nodes whose
identifiers it *knows*; initially it knows its own identifier and those of its
graph neighbors.  Knowledge grows when a node receives a message whose payload
contains identifiers (the application must declare them) or simply by having
exchanged a message with a node (sender identifiers are always learned).

The tracker is deliberately explicit: algorithms call
``simulator.declare_learned_ids(node, ids)`` when a received payload taught the
node new identifiers (e.g. the broadcast of all identifiers used as a
preprocessing step in Theorem 1's corollary).  Sending to an unknown identifier
raises :class:`~repro.simulator.errors.UnknownIdentifierError`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Set

from repro.simulator.errors import UnknownNodeError

__all__ = ["KnowledgeTracker"]


class KnowledgeTracker:
    """Tracks, per node, the set of identifiers the node currently knows."""

    def __init__(self, all_ids: Iterable[Hashable]) -> None:
        self._all_ids: Set[Hashable] = set(all_ids)
        self._known: Dict[Hashable, Set[Hashable]] = {}

    def initialize_node(self, node_id: Hashable, neighbor_ids: Iterable[Hashable]) -> None:
        """A node starts knowing its own identifier and its neighbors' (Section 1.3)."""
        self._validate(node_id)
        known = {node_id}
        known.update(neighbor_ids)
        self._known[node_id] = known

    def initialize_all_known(self) -> None:
        """HYBRID (dense regime): every node knows every identifier from the start."""
        for node_id in self._all_ids:
            self._known[node_id] = set(self._all_ids)

    def knows(self, node_id: Hashable, target_id: Hashable) -> bool:
        self._validate(node_id)
        return target_id in self._known.get(node_id, set())

    def known_ids(self, node_id: Hashable) -> Set[Hashable]:
        self._validate(node_id)
        return set(self._known.get(node_id, set()))

    def known_ids_view(self, node_id: Hashable) -> Set[Hashable]:
        """The node's knowledge set *without* a defensive copy.

        Used by the batch send path, which probes membership once per queued
        message; treat the returned set as read-only.
        """
        self._validate(node_id)
        return self._known.get(node_id, set())

    def learn(self, node_id: Hashable, new_ids: Iterable[Hashable]) -> None:
        """Record that ``node_id`` learned the identifiers in ``new_ids``.

        Identifiers that do not exist in the network are ignored (a node may be
        told about identifiers that turn out to be bogus; it simply cannot reach
        anyone with them).
        """
        self._validate(node_id)
        bucket = self._known.setdefault(node_id, {node_id})
        if not isinstance(new_ids, (set, frozenset)):
            new_ids = set(new_ids)
        bucket |= new_ids & self._all_ids

    def knowledge_count(self, node_id: Hashable) -> int:
        self._validate(node_id)
        return len(self._known.get(node_id, set()))

    def _validate(self, node_id: Hashable) -> None:
        if node_id not in self._all_ids:
            raise UnknownNodeError(node_id)
