"""Deterministic-merge property grid for the sharded round planner.

The :class:`~repro.simulator.sharding.ShardedPlanner` must be
**token-for-token schedule-identical** to the single-process planner (and
hence to ``_reference_shard_transfers``, the repo's standing oracle) for
every shard count, on every workload shape, under both array backends —
including the branches where sharding declines to engage (oversized tokens,
single-component traffic) and the branch where buckets execute on a real
``multiprocessing`` pool over shared memory.

The grid crosses shard counts 1/2/4/7 with the six graph families and three
seeds; workloads are derived from each family's node set as node-disjoint
congested groups, which guarantees multiple bipartite components so the
partition path genuinely engages (a fully connected workload would delegate
— still identical, but vacuously).  Exchange- and algorithm-level tests pin
that an *installed* planner leaves delivered payloads, metrics and round
counts bit-identical end to end.
"""

from __future__ import annotations

import random

import pytest

from repro.core.dissemination import KDissemination
from repro.graphs.generators import (
    barbell_graph,
    broom_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
)
from repro.simulator import _accel
from repro.simulator import engine as engine_module
from repro.simulator.config import ModelConfig
from repro.simulator.engine import (
    TokenPlane,
    _reference_shard_transfers,
    batched_global_exchange,
    install_planner,
    installed_planner,
    plan_token_rounds,
)
from repro.simulator.network import HybridSimulator
from repro.simulator.sharding import ShardedPlanner

SEEDS = [0, 1, 2]
WORKER_COUNTS = [1, 2, 4, 7]

requires_numpy = pytest.mark.skipif(
    _accel.np is None, reason="NumPy not available; vectorised leg is inactive"
)

GRAPH_FAMILIES = {
    "path": lambda seed: path_graph(30),
    "cycle": lambda seed: cycle_graph(30),
    "grid": lambda seed: grid_graph(6, 2),
    "barbell": lambda seed: barbell_graph(8, 12),
    "broom": lambda seed: broom_graph(18, 10),
    "erdos_renyi": lambda seed: erdos_renyi_graph(30, 0.12, seed=seed),
}

CASES = [(family, seed) for family in sorted(GRAPH_FAMILIES) for seed in SEEDS]


def _ids(case):
    family, seed = case
    return f"{family}-s{seed}"


@pytest.fixture(params=["numpy", "python"])
def backend(request, monkeypatch):
    """Run the test body under both array backends."""
    if request.param == "python":
        monkeypatch.setattr(_accel, "np", None)
    elif _accel.np is None:
        pytest.skip("NumPy not available; vectorised leg is inactive")
    return request.param


@pytest.fixture
def planner_state(monkeypatch):
    """Snapshot/restore the engine's process-wide planner hook."""
    monkeypatch.setattr(
        engine_module, "_active_planner", engine_module._active_planner
    )
    monkeypatch.setattr(
        engine_module, "_env_planner_resolved", engine_module._env_planner_resolved
    )
    return engine_module


# ----------------------------------------------------------------------
# Workload generators (node indices in [0, n); words >= 1)
# ----------------------------------------------------------------------
def _grouped_congested(rng, n, budget):
    """Node-disjoint congested groups: guaranteed >= 2 bipartite components.

    Each group hammers one hot member with at least ``1.5 * budget`` words,
    so the plan is always multi-round and the partition path must engage.
    """
    groups = max(2, min(4, n // 6))
    nodes = list(range(n))
    rng.shuffle(nodes)
    size = n // groups
    senders, receivers, words = [], [], []
    for g in range(groups):
        members = nodes[g * size : (g + 1) * size]
        hot = members[0]
        count = 2 * budget + rng.randrange(5, 20)
        for i in range(count):
            senders.append(rng.choice(members))
            receivers.append(hot if i % 4 else rng.choice(members))
            words.append(rng.choice([1, 2, 3]))
    return senders, receivers, words


def _reference_schedule(senders, receivers, words, budget, tag_words):
    tokens = [
        (senders[i], receivers[i], ("payload", i), words[i])
        for i in range(len(words))
    ]
    return [
        [token[2][1] for token in shard]
        for shard in _reference_shard_transfers(tokens, budget, tag_words)
    ]


def _plane(senders, receivers, words):
    return TokenPlane(
        senders, receivers, words, [("payload", i) for i in range(len(words))]
    )


def _as_lists(shards):
    return [[int(position) for position in shard] for shard in shards]


# ----------------------------------------------------------------------
# The grid: shard counts x families x seeds x backends
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_sharded_schedule_is_token_identical(case, workers, backend):
    family, seed = case
    graph = GRAPH_FAMILIES[family](seed)
    n = graph.number_of_nodes()
    rng = random.Random(f"shard-{family}-{seed}-{workers}")
    budget = rng.choice([8, 13, 24, 57])
    tag_words = rng.choice([0, 1, 2])
    senders, receivers, words = _grouped_congested(rng, n, budget)

    planner = ShardedPlanner(workers, use_processes=False, min_tokens=1)
    actual = _as_lists(planner.plan(_plane(senders, receivers, words), budget, tag_words))
    expected = _reference_schedule(senders, receivers, words, budget, tag_words)
    assert actual == expected, (
        f"{family} seed={seed} workers={workers} backend={backend}: "
        f"sharded schedule diverged from the greedy reference"
    )
    # The workload is congested and multi-component by construction, so the
    # partition machinery must actually have run for every workers >= 2.
    assert planner.sharded_plans == (1 if workers > 1 else 0)
    assert planner.process_plans == 0
    # Every token scheduled exactly once.
    flat = sorted(position for shard in actual for position in shard)
    assert flat == list(range(len(words)))


@pytest.mark.parametrize("workers", [2, 7])
@pytest.mark.parametrize("case", CASES[::3], ids=_ids)
def test_oversized_tokens_take_the_exact_fallback(case, workers, backend):
    """Any individually-oversized token couples components: the planner must
    delegate to the single-process planner, never approximate."""
    family, seed = case
    graph = GRAPH_FAMILIES[family](seed)
    n = graph.number_of_nodes()
    rng = random.Random(f"oversize-{family}-{seed}")
    budget = rng.choice([8, 13, 24])
    senders, receivers, words = _grouped_congested(rng, n, budget)
    for _ in range(rng.randrange(1, 4)):
        position = rng.randrange(len(words) + 1)
        senders.insert(position, rng.randrange(n))
        receivers.insert(position, rng.randrange(n))
        words.insert(position, 10_000)

    planner = ShardedPlanner(workers, use_processes=False, min_tokens=1)
    actual = _as_lists(planner.plan(_plane(senders, receivers, words), budget, 1))
    assert actual == _reference_schedule(senders, receivers, words, budget, 1)
    assert planner.sharded_plans == 0  # fallback, not partition


@pytest.mark.parametrize("workers", [2, 4])
@pytest.mark.parametrize("seed", SEEDS)
def test_hot_receiver_collapses_to_one_bucket_and_delegates(seed, workers, backend):
    """A global hot receiver makes one giant component: sharding cannot help,
    so the planner stays serial — and stays identical."""
    rng = random.Random(4100 + seed)
    n = 40
    count = 150
    target = rng.randrange(n)
    senders = [rng.randrange(n) for _ in range(count)]
    receivers = [target for _ in range(count)]
    words = [rng.choice([1, 2, 4]) for _ in range(count)]

    planner = ShardedPlanner(workers, use_processes=False, min_tokens=1)
    actual = _as_lists(planner.plan(_plane(senders, receivers, words), 13, 1))
    assert actual == _reference_schedule(senders, receivers, words, 13, 1)
    assert planner.sharded_plans == 0  # single component => delegation


# ----------------------------------------------------------------------
# Process-pool execution (shared-memory roundtrip)
# ----------------------------------------------------------------------
@requires_numpy
@pytest.mark.parametrize("seed", SEEDS)
def test_process_pool_schedules_are_identical(seed):
    rng = random.Random(5200 + seed)
    budget = 24
    senders, receivers, words = _grouped_congested(rng, 48, budget)
    plane = _plane(senders, receivers, words)
    expected = _reference_schedule(senders, receivers, words, budget, 1)

    with ShardedPlanner(2, use_processes=True, min_tokens=1) as planner:
        first = _as_lists(planner.plan(plane, budget, 1))
        if planner._pool_broken:
            pytest.skip("multiprocessing pool unavailable in this environment")
        assert first == expected
        assert planner.process_plans == 1
        # The pool is persistent: a second plan reuses it.
        second = _as_lists(planner.plan(plane, budget, 1))
        assert second == expected
        assert planner.process_plans == 2
        assert planner.sharded_plans == 2


# ----------------------------------------------------------------------
# Installed planner: exchange- and algorithm-level identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_installed_planner_exchange_is_bit_identical(seed, backend, planner_state):
    graph = erdos_renyi_graph(36, 0.15, seed=seed)
    rng = random.Random(6300 + seed)
    budget = HybridSimulator(graph, ModelConfig.hybrid()).global_budget_words()
    senders, receivers, words = _grouped_congested(rng, 36, min(budget, 24))
    triples = [
        (senders[i], receivers[i], ("m", i, "x" * max(0, words[i] * 8 - 8)))
        for i in range(len(words))
    ]

    def run(planner):
        install_planner(planner)
        sim = HybridSimulator(graph, ModelConfig(strict=False), seed=seed)
        delivered = batched_global_exchange(sim, list(triples), tag="sp")
        return delivered, sim.metrics.summary()

    baseline = run(None)
    with ShardedPlanner(4, use_processes=False, min_tokens=1) as planner:
        sharded = run(planner)
    assert sharded[0] == baseline[0]
    assert sharded[1] == baseline[1]


@pytest.mark.parametrize("seed", SEEDS)
def test_installed_planner_dissemination_is_bit_identical(seed, backend, planner_state):
    graph = GRAPH_FAMILIES["barbell"](seed)
    rng = random.Random(7400 + seed)
    tokens = {}
    for index in range(14):
        tokens.setdefault(rng.randrange(graph.number_of_nodes()), []).append(
            ("tok", index)
        )

    def run(planner):
        install_planner(planner)
        sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
        result = KDissemination(sim, tokens).run()
        assert result.all_nodes_know_all_tokens()
        return result.metrics.summary()

    baseline = run(None)
    with ShardedPlanner(4, use_processes=False, min_tokens=1) as planner:
        sharded = run(planner)
    assert sharded == baseline


def test_env_variable_installs_and_uninstalls_the_planner(monkeypatch, planner_state):
    monkeypatch.setenv("REPRO_SHARD_WORKERS", "3")
    engine_module._active_planner = None
    engine_module._env_planner_resolved = False
    planner = installed_planner()
    try:
        assert isinstance(planner, ShardedPlanner)
        assert planner.workers == 3
        # Resolution is sticky until explicitly reinstalled.
        assert installed_planner() is planner
    finally:
        if planner is not None:
            planner.close()
    install_planner(None)
    assert installed_planner() is None

    monkeypatch.delenv("REPRO_SHARD_WORKERS", raising=False)
    engine_module._active_planner = None
    engine_module._env_planner_resolved = False
    assert installed_planner() is None


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_planned_rounds_routes_through_installed_planner(seed, backend, planner_state):
    """The engine's scheduling seam really consults the installed planner."""
    rng = random.Random(8500 + seed)
    senders, receivers, words = _grouped_congested(rng, 30, 13)
    plane = _plane(senders, receivers, words)

    class CountingPlanner(ShardedPlanner):
        def __init__(self):
            super().__init__(2, use_processes=False, min_tokens=1)
            self.calls = 0

        def plan(self, plane, budget, tag_words=0):
            self.calls += 1
            return super().plan(plane, budget, tag_words)

    counting = CountingPlanner()
    install_planner(counting)
    planned = _as_lists(engine_module._planned_rounds(plane, 13, 1))
    assert counting.calls == 1
    assert planned == _as_lists(plan_token_rounds(plane, 13, 1))
    install_planner(None)
    assert _as_lists(engine_module._planned_rounds(plane, 13, 1)) == planned
