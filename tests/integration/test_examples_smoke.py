"""Smoke tests: the runnable examples must keep working.

These import each example module from ``examples/`` and run its ``main``; the
examples themselves contain assertions (delivery completeness, stretch bounds),
so a passing run means the documented user journey still works.  The heavier
WAN example is exercised through its component functions on a reduced instance
to keep the suite fast.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_quickstart_example_runs(capsys):
    module = load_example("quickstart")
    module.main()
    output = capsys.readouterr().out
    assert "k-dissemination" in output
    assert "APSP" in output


def test_nq_landscape_example_runs(capsys):
    module = load_example("nq_landscape")
    module.main()
    output = capsys.readouterr().out
    assert "NQ_k" in output
    assert "path(n=144)" in output


def test_datacenter_example_components(capsys):
    module = load_example("datacenter_control_plane")
    _, graph = module.build_fabric()
    module.disseminate_config_changes(graph, k=20, concentrated=True, seed=3)
    module.aggregate_health_metrics(graph, seed=3)
    output = capsys.readouterr().out
    assert "config changes" in output
    assert "health aggregation" in output


def test_routing_tables_example_components(capsys):
    module = load_example("routing_tables")
    # Reduced WAN so the smoke test stays fast.
    from repro.graphs import GraphSpec, generate_graph
    from repro.graphs.weighted import assign_random_weights

    graph = assign_random_weights(
        generate_graph(GraphSpec.of("geometric", n=40, radius=0.3, seed=5)),
        max_weight=10,
        seed=5,
    )
    module.gateway_tables(graph, seed=5)
    module.full_tables_via_spanner(graph, seed=5)
    output = capsys.readouterr().out
    assert "gateway tables" in output
    assert "spanner" in output
