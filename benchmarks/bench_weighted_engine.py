"""Weighted analytics engine acceptance (flat Dijkstra + one-sweep clustering).

PR 4 moved every centralized weighted computation onto the
:class:`~repro.graphs.index.GraphIndex` weighted layer:

* ``approx_sssp_distances`` / ``exact_sssp_distances`` run a flat-array
  Dijkstra over the cached CSR, with the power-of-``(1 + eps)`` weight
  rounding applied once per ``(graph, epsilon)`` instead of once per edge
  relaxation per query;
* ``nq_clustering`` (Lemma 3.5) replaces its two dict-BFS passes per ruler
  (closest-ruler assignment + member BFS order) with a single flat
  multi-source sweep, and ``greedy_ruling_set`` grows from flat frontiers.

This benchmark guards both migrations at n = 2000:

* ``test_weighted_engine_speedup`` — the index paths must beat the historical
  dict+heapq ``_reference_*`` implementations by >= 5x (relaxable on noisy CI
  runners via ``WEIGHTED_ENGINE_MIN_SPEEDUP``) while agreeing **exactly**
  (all SSSP distances, and the full clustering structure byte for byte);
* ``test_weighted_large_tier`` — n >= 10^4 Lemma 3.5 clustering points
  (the Table 2/3 prerequisite), run by the scheduled CI job
  (``BENCH_SCALE=large``).

Fast-path timings regenerate the graph each repeat, so they include the CSR
build and weight rounding — the honest cold-start cost a caller pays.
"""

from __future__ import annotations

import os
import time

import pytest

from _artifacts import update_trajectory, write_bench_artifact
from repro.analysis.experiments import run_clustering_scale_point
from repro.core.clustering import _reference_nq_clustering, nq_clustering
from repro.core.neighborhood_quality import neighborhood_quality
from repro.core.sssp import _reference_approx_sssp_distances
from repro.graphs.generators import GraphSpec, generate_graph
from repro.graphs.index import get_index
from repro.graphs.weighted import assign_random_weights

N = 2000
SSSP_SOURCES = 32
EPSILON = 0.25
CLUSTER_K = 64
REPEATS = 3
#: The acceptance bar on a quiet machine.  Shared CI runners have wall-clock
#: variance, so CI may relax the floor via WEIGHTED_ENGINE_MIN_SPEEDUP (exact
#: agreement between the implementations is never relaxed).
REQUIRED_SPEEDUP = float(os.environ.get("WEIGHTED_ENGINE_MIN_SPEEDUP", "5.0"))


def _fresh_sssp_graph():
    # The Table 2/3 weighted workloads are relaxation-heavy; the large-tier
    # Erdos-Renyi instance (avg degree ~16) is where the per-edge costs the
    # migration removed — nx adjacency traversal, per-relaxation
    # ``round_weight_up`` — actually dominate.
    return assign_random_weights(
        generate_graph(GraphSpec.of("erdos_renyi", n=N, p=0.008, seed=7)),
        max_weight=16,
        seed=7,
    )


def _fresh_clustering_graph():
    # The Lemma 3.5 construction is hop-based; the n = 2000 path maximises the
    # ruler count (~n / alpha), i.e. the number of per-ruler BFS passes the
    # one-sweep construction replaces.
    return assign_random_weights(
        generate_graph(GraphSpec.of("path", n=N)), max_weight=16, seed=7
    )


def _sssp_sources(graph):
    nodes = sorted(graph.nodes)
    step = max(1, len(nodes) // SSSP_SOURCES)
    return nodes[::step][:SSSP_SOURCES]


def run_sssp_speedup_comparison() -> dict:
    """Batched (1+eps)-SSSP rows: index engine vs the dict+heapq reference."""
    graph = _fresh_sssp_graph()
    sources = _sssp_sources(graph)

    start = time.perf_counter()
    reference = {
        s: _reference_approx_sssp_distances(graph, s, EPSILON) for s in sources
    }
    reference_seconds = time.perf_counter() - start

    fast_times = []
    fast = None
    for _ in range(REPEATS):
        # A fresh graph instance per repeat defeats the per-graph index (and
        # rounded-CSR) caches: the timing includes the one-off CSR build and
        # weight rounding the first query on a graph pays.
        graph = _fresh_sssp_graph()
        start = time.perf_counter()
        fast = get_index(graph).sssp_dicts(sources, EPSILON)
        fast_times.append(time.perf_counter() - start)

    identical = fast == reference
    fast_best = min(fast_times)
    return {
        "workload": f"{SSSP_SOURCES} x (1+{EPSILON})-SSSP rows",
        "n": N,
        "fast seconds (best of 3, cold cache)": round(fast_best, 4),
        "reference seconds": round(reference_seconds, 4),
        "speedup": round(reference_seconds / fast_best, 1),
        "identical": identical,
    }


def run_clustering_speedup_comparison() -> dict:
    """Lemma 3.5 clustering: one-sweep construction vs per-ruler dict BFS."""
    graph = _fresh_clustering_graph()
    nq = max(1, neighborhood_quality(graph, CLUSTER_K))

    start = time.perf_counter()
    reference = _reference_nq_clustering(graph, CLUSTER_K, nq=nq)
    reference_seconds = time.perf_counter() - start

    fast_times = []
    fast = None
    for _ in range(REPEATS):
        graph = _fresh_clustering_graph()
        start = time.perf_counter()
        fast = nq_clustering(graph, CLUSTER_K, nq=nq)
        fast_times.append(time.perf_counter() - start)

    identical = (
        fast.nq == reference.nq
        and len(fast.clusters) == len(reference.clusters)
        and all(
            f.leader == r.leader and f.members == r.members and f.index == r.index
            for f, r in zip(fast.clusters, reference.clusters)
        )
        and fast.cluster_of == reference.cluster_of
    )
    fast_best = min(fast_times)
    return {
        "workload": f"NQ_k clustering (k={CLUSTER_K}, NQ_k={nq})",
        "n": N,
        "fast seconds (best of 3, cold cache)": round(fast_best, 4),
        "reference seconds": round(reference_seconds, 4),
        "speedup": round(reference_seconds / fast_best, 1),
        "identical": identical,
    }


def _check_rows(rows) -> None:
    for row in rows:
        assert row["identical"], f"{row['workload']}: fast path diverged"
        assert row["speedup"] >= REQUIRED_SPEEDUP, (
            f"{row['workload']}: speedup {row['speedup']}x below the required "
            f"{REQUIRED_SPEEDUP}x"
        )


def _write_artifact(rows) -> None:
    write_bench_artifact(
        "weighted_engine",
        rows,
        n=N,
        sssp_sources=SSSP_SOURCES,
        epsilon=EPSILON,
        cluster_k=CLUSTER_K,
        repeats=REPEATS,
        required_speedup=REQUIRED_SPEEDUP,
    )
    speedups = sorted(row["speedup"] for row in rows)
    update_trajectory(
        "weighted_engine",
        f"flat-index analytics {speedups[0]}x-{speedups[-1]}x faster than the "
        f"dict+heapq references (floor {REQUIRED_SPEEDUP}x) at n={N}",
    )


def test_weighted_engine_speedup(save_table):
    rows = [run_sssp_speedup_comparison(), run_clustering_speedup_comparison()]
    save_table(
        "weighted_engine_speedup",
        rows,
        "Weighted analytics engine - flat index paths vs dict+heapq references",
    )
    _write_artifact(rows)
    _check_rows(rows)


LARGE_CLUSTERING_POINTS = [
    # n >= 10^4 Lemma 3.5 clustering, incl. the weak-diameter verification
    # (one shared-index early-exit BFS per member).
    (GraphSpec.of("path", n=20_000), 4096, True),
    # A 2-d grid point of the same magnitude; bounds are skipped there (the
    # per-member weak-diameter sweep is the dominant cost, not construction).
    (GraphSpec.of("grid", side=110, dim=2), 1024, False),
]


def test_weighted_large_tier(save_table):
    """The n >= 10^4 clustering points; runs in the scheduled CI job."""
    if os.environ.get("BENCH_SCALE") != "large":
        pytest.skip("large tier runs in the scheduled CI job (BENCH_SCALE=large)")
    rows = []
    for spec, k, check_bounds in LARGE_CLUSTERING_POINTS:
        rows.append(run_clustering_scale_point(spec, k, check_bounds=check_bounds))
    save_table(
        "weighted_engine_large",
        rows,
        "Lemma 3.5 clustering at n >= 10^4 (weighted engine scheduled tier)",
    )
    for row in rows:
        assert row["clusters"] >= 1
        if "max weak diameter" in row:
            assert row["max weak diameter"] <= row["weak diameter bound"]


def main() -> None:
    rows = [run_sssp_speedup_comparison(), run_clustering_speedup_comparison()]
    for row in rows:
        width = max(len(key) for key in row)
        for key, value in row.items():
            print(f"{key:<{width}}  {value}")
        print()
    _write_artifact(rows)
    _check_rows(rows)
    print(f"OK: weighted analytics engine meets the >= {REQUIRED_SPEEDUP}x bar.")


if __name__ == "__main__":
    main()
