"""First-class in-place graph mutation with incremental index maintenance.

The supported way to edit a graph that analytics or simulators may already
have indexed.  Historically every cache in the system treated graphs as
frozen: :func:`repro.graphs.index.get_index` detected mutations only through
node/edge *counts*, so a rewiring or re-weighting that preserved both counts
silently served a dead CSR.  :class:`GraphMutator` closes that hole from the
write side:

* every edit bumps the graph's **version stamp**
  (:func:`repro.graphs.index.bump_graph_version`), which every versioned
  consumer — :func:`~repro.graphs.index.get_index`, ``HybridSimulator``
  plane sends, row caches, lazy distance tables — checks before serving
  cached state;
* when the graph's :class:`~repro.graphs.index.GraphIndex` is already built,
  the edit is applied to it **incrementally** (``apply_edge_insert`` /
  ``apply_edge_delete`` / ``apply_weight_update`` patch the CSR adjacency,
  the weight array and every memoised rounded/pair derivative in place, and
  drop only the analytics caches the edit class can change) instead of
  forcing a full O(n + m) rebuild — at n = 2000 a single-edge edit plus a
  local re-query is an order of magnitude cheaper than
  ``invalidate_index`` + rebuild (``benchmarks/bench_dynamic_index.py``).

The full rebuild (``GraphIndex(graph)`` from scratch) remains the reference
oracle: the property grid in ``tests/properties/test_dynamic_index.py`` pins
that every query answer on a patched index is value-identical to a fresh
build across the six graph families.  Edits the patcher does not support —
adding an edge whose endpoint is a **new node** — fall back to the full-drop
path (:func:`~repro.graphs.index.invalidate_index`), as do graph-like
objects that cannot carry a version stamp.  See DESIGN.md ("Graph mutation
and the version-stamp protocol") for the decision table.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional, Tuple

import networkx as nx

from repro.graphs.index import (
    _peek_index,
    bump_graph_version,
    graph_version,
    invalidate_index,
)

Node = Hashable

__all__ = ["GraphMutator"]

#: Crossover constant of :meth:`GraphMutator.apply_batch`: patching costs
#: roughly a constant number of CSR/derivative touches per edit while a full
#: rebuild costs O(n + m), so a batch of ``k`` edits prefers the single
#: rebuild once ``k * _BATCH_REBUILD_FACTOR`` reaches ``n + m``.
_BATCH_REBUILD_FACTOR = 4


class GraphMutator:
    """Versioned in-place edit API for one graph.

    All three operations mutate ``graph`` itself (so ``networkx`` views stay
    truthful), advance the graph's version stamp, and keep the cached
    :class:`~repro.graphs.index.GraphIndex` — if one exists — either patched
    in place (the common case) or retired (edits outside the incremental
    patcher's scope).  Each returns the new version stamp.

    The mutator holds a strong reference to the graph and is cheap to
    construct; create one per edit burst or keep one per graph, both are
    fine.
    """

    __slots__ = ("graph",)

    def __init__(self, graph: nx.Graph) -> None:
        self.graph = graph

    # ------------------------------------------------------------------
    # Edit operations
    # ------------------------------------------------------------------
    def add_edge(self, u: Node, v: Node, weight: Optional[float] = None) -> int:
        """Add edge ``(u, v)`` (optionally weighted); returns the new version.

        ``weight=None`` adds an unweighted edge (indexed at the default
        weight 1, matching a from-scratch build).  Self-loops, non-positive
        weights and already-present edges raise ``ValueError`` (use
        :meth:`update_weight` for re-weighting).  Endpoints that are new
        nodes are supported but take the full-drop path: the node set
        changed, so the cached index is retired instead of patched.
        """
        if u == v:
            raise ValueError(f"self-loop at node {u!r}: not supported")
        if weight is not None and weight <= 0:
            raise ValueError("edge weights must be positive")
        graph = self.graph
        if graph.has_edge(u, v):
            raise ValueError(
                f"edge ({u!r}, {v!r}) already exists; use update_weight()"
            )
        adds_node = u not in graph or v not in graph
        if weight is None:
            graph.add_edge(u, v)
        else:
            graph.add_edge(u, v, weight=weight)
        if adds_node:
            return self._full_drop()
        return self._commit(
            lambda index: index.apply_edge_insert(
                u, v, 1 if weight is None else weight
            )
        )

    def remove_edge(self, u: Node, v: Node) -> int:
        """Remove edge ``(u, v)``; returns the new version.

        Raises ``KeyError`` when the edge does not exist.  Nodes are never
        removed (an isolated endpoint stays a node), so the cached index is
        always patched in place.
        """
        graph = self.graph
        if not graph.has_edge(u, v):
            raise KeyError(f"edge ({u!r}, {v!r}) not in graph")
        graph.remove_edge(u, v)
        return self._commit(lambda index: index.apply_edge_delete(u, v))

    def update_weight(self, u: Node, v: Node, weight: float) -> int:
        """Set the weight of existing edge ``(u, v)``; returns the new version.

        The cheapest edit class: hop-based analytics caches (connectivity,
        diameter, NQ, tie ranks) all survive; only the weight arrays and
        their rounded/pair derivatives are patched.
        """
        if weight <= 0:
            raise ValueError("edge weights must be positive")
        graph = self.graph
        if not graph.has_edge(u, v):
            raise KeyError(f"edge ({u!r}, {v!r}) not in graph")
        graph[u][v]["weight"] = weight
        return self._commit(lambda index: index.apply_weight_update(u, v, weight))

    def apply_batch(self, edits: Iterable[Tuple]) -> int:
        """Apply a burst of edits as **one** versioned mutation.

        ``edits`` is an iterable of tuples: ``("add", u, v)``,
        ``("add", u, v, weight)``, ``("remove", u, v)`` or
        ``("update", u, v, weight)``, applied to the graph in order (so an
        edge added earlier in the batch may be re-weighted later in it), with
        the same per-edit validation as the single-edit methods.  The whole
        batch bumps the version stamp exactly once and makes one index
        decision: the cached :class:`~repro.graphs.index.GraphIndex` is
        either patched with all ``k`` edits in order, or — when ``k`` is
        large enough that a from-scratch build is cheaper
        (``k * _BATCH_REBUILD_FACTOR >= n + m``), when an edit adds a new
        node, or when the index is untrustworthy — retired once up front
        instead of being patched ``k`` times only to be dropped.  Returns
        the new version stamp.

        An empty batch is a no-op (no bump; returns the current version).
        If a mid-batch edit fails validation, the earlier edits are already
        applied to the graph — the burst is then still committed as one
        mutation (version bumped, index retired) before the error propagates,
        so a partially-applied batch can never be served from a stale index.
        """
        graph = self.graph
        staged = [self._stage_edit(edit) for edit in edits]
        if not staged:
            return graph_version(graph)
        patches: List = []
        needs_full = False
        applied = 0
        try:
            for op, u, v, weight in staged:
                if op == "add":
                    if u == v:
                        raise ValueError(f"self-loop at node {u!r}: not supported")
                    if weight is not None and weight <= 0:
                        raise ValueError("edge weights must be positive")
                    if graph.has_edge(u, v):
                        raise ValueError(
                            f"edge ({u!r}, {v!r}) already exists; use update_weight()"
                        )
                    if u not in graph or v not in graph:
                        needs_full = True
                    if weight is None:
                        graph.add_edge(u, v)
                    else:
                        graph.add_edge(u, v, weight=weight)
                    patches.append(
                        lambda index, u=u, v=v, w=1 if weight is None else weight:
                            index.apply_edge_insert(u, v, w)
                    )
                elif op == "remove":
                    if not graph.has_edge(u, v):
                        raise KeyError(f"edge ({u!r}, {v!r}) not in graph")
                    graph.remove_edge(u, v)
                    patches.append(
                        lambda index, u=u, v=v: index.apply_edge_delete(u, v)
                    )
                else:  # "update"
                    if weight <= 0:
                        raise ValueError("edge weights must be positive")
                    if not graph.has_edge(u, v):
                        raise KeyError(f"edge ({u!r}, {v!r}) not in graph")
                    graph[u][v]["weight"] = weight
                    patches.append(
                        lambda index, u=u, v=v, w=weight:
                            index.apply_weight_update(u, v, w)
                    )
                applied += 1
        except Exception:
            if applied:
                # The graph holds a partial batch: commit it as one mutation
                # (invalidate_index bumps once and retires the index).
                invalidate_index(graph)
            raise
        index = _peek_index(graph)
        before = graph_version(graph)
        rebuild_cheaper = (
            _BATCH_REBUILD_FACTOR * len(patches)
            >= graph.number_of_nodes() + graph.number_of_edges()
        )
        if (
            index is not None
            and not needs_full
            and not index.retired
            and index.version == before
            and not rebuild_cheaper
        ):
            version = bump_graph_version(graph)
            if version is None:
                invalidate_index(graph)
                return 0
            try:
                for patch in patches:
                    patch(index)
            except Exception:
                invalidate_index(graph)
                raise
            index.version = version
            return version
        if index is None:
            version = bump_graph_version(graph)
            if version is None:
                invalidate_index(graph)
                return 0
            return version
        return self._full_drop()

    @staticmethod
    def _stage_edit(edit: Tuple) -> Tuple[str, Node, Node, Optional[float]]:
        """Normalise one batch edit to ``(op, u, v, weight)``; shape errors
        raise before anything touches the graph."""
        if not isinstance(edit, tuple) or not edit:
            raise ValueError(f"batch edit must be a non-empty tuple, got {edit!r}")
        op = edit[0]
        if op == "add" and len(edit) in (3, 4):
            return ("add", edit[1], edit[2], edit[3] if len(edit) == 4 else None)
        if op == "remove" and len(edit) == 3:
            return ("remove", edit[1], edit[2], None)
        if op == "update" and len(edit) == 4:
            return ("update", edit[1], edit[2], edit[3])
        raise ValueError(
            f"unsupported batch edit {edit!r}; use ('add', u, v[, weight]), "
            f"('remove', u, v) or ('update', u, v, weight)"
        )

    # ------------------------------------------------------------------
    # Version / index synchronisation
    # ------------------------------------------------------------------
    def _commit(self, patch) -> int:
        """Bump the version and patch the cached index (if trustworthy).

        The cached index is patched only when its version matches the
        pre-edit stamp — an index left behind by an out-of-band mutation is
        retired instead (patching it would compound the corruption).
        """
        graph = self.graph
        before = graph_version(graph)
        version = bump_graph_version(graph)
        if version is None:
            # Unstampable graph-like object: no version to check, so the only
            # safe move is the full drop.
            invalidate_index(graph)
            return 0
        index = _peek_index(graph)
        if index is None:
            return version
        if index.retired or index.version != before:
            invalidate_index(graph)
            return graph_version(graph)
        try:
            patch(index)
        except Exception:
            # The graph is already mutated; a half-applied patch must never
            # survive as a servable index.
            invalidate_index(graph)
            raise
        index.version = version
        return version

    def _full_drop(self) -> int:
        """Retire the cached index entirely (edits outside the patcher)."""
        invalidate_index(self.graph)
        return graph_version(self.graph)
