"""Skeleton graphs (Definition 6.2, Lemma 6.3).

A skeleton graph ``S = (V_S, E_S, w_S)`` of ``G`` with parameter ``x`` is
obtained by sampling every node into ``V_S`` independently with probability
``>= 1/x`` and connecting two skeleton nodes whenever their hop distance in
``G`` is at most ``h = xi * x * ln n``; the edge weight is the ``h``-hop
limited distance ``d^h_G``.

Lemma 6.3 (well-known, from [AHK+20]):

1. every shortest path of hop length >= h contains a skeleton node in every
   ``h``-node subpath (w.h.p.), and
2. skeleton distances equal the original graph distances between skeleton
   nodes (w.h.p.).

The construction only uses ``h`` rounds of local-mode communication (each
sampled node explores its ``h``-hop neighborhood), which is what the
distributed wrapper charges.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.graphs.properties import h_hop_limited_distances
from repro.simulator.network import HybridSimulator

Node = Hashable

__all__ = ["SkeletonGraph", "build_skeleton", "distributed_skeleton"]

#: The constant ``xi`` in ``h = xi * x * ln n``.  The paper only needs it to be a
#: "sufficiently large constant"; 3 keeps the hitting-set property reliable on
#: the instance sizes used here while keeping h (and thus the charged rounds)
#: moderate.
DEFAULT_XI = 3.0


@dataclasses.dataclass
class SkeletonGraph:
    """A skeleton graph together with its construction parameters."""

    graph: nx.Graph
    skeleton_nodes: List[Node]
    sampling_probability: float
    h: int

    @property
    def node_count(self) -> int:
        return len(self.skeleton_nodes)

    def contains(self, node: Node) -> bool:
        return node in set(self.skeleton_nodes)


def build_skeleton(
    graph: nx.Graph,
    sampling_probability: float,
    *,
    seed: Optional[int] = None,
    xi: float = DEFAULT_XI,
    forced_nodes: Optional[Sequence[Node]] = None,
) -> SkeletonGraph:
    """Definition 6.2: sample skeleton nodes and connect nearby pairs.

    ``forced_nodes`` are always included in the skeleton (used by the k-SSP
    algorithm when the sources must be part of the skeleton, Lemma 9.4 /
    Theorem 14 "random sources" case).
    """
    if not 0.0 < sampling_probability <= 1.0:
        raise ValueError("sampling_probability must lie in (0, 1]")
    n = graph.number_of_nodes()
    rng = random.Random(seed)
    x = 1.0 / sampling_probability
    h = max(1, int(math.ceil(xi * x * math.log(max(n, 2)))))

    skeleton_nodes: Set[Node] = set(forced_nodes or [])
    for node in sorted(graph.nodes, key=str):
        if node in skeleton_nodes:
            continue
        if rng.random() < sampling_probability:
            skeleton_nodes.add(node)
    if not skeleton_nodes:
        # Degenerate but possible on tiny graphs: force one node so downstream
        # algorithms have something to work with.
        skeleton_nodes.add(sorted(graph.nodes, key=str)[0])

    skeleton = nx.Graph()
    skeleton.add_nodes_from(skeleton_nodes)
    ordered = sorted(skeleton_nodes, key=str)
    for node in ordered:
        limited = h_hop_limited_distances(graph, node, h)
        for other, dist in limited.items():
            if other == node or other not in skeleton_nodes:
                continue
            existing = skeleton.get_edge_data(node, other)
            if existing is None or dist < existing.get("weight", math.inf):
                skeleton.add_edge(node, other, weight=dist)

    return SkeletonGraph(
        graph=skeleton,
        skeleton_nodes=ordered,
        sampling_probability=sampling_probability,
        h=h,
    )


def distributed_skeleton(
    simulator: HybridSimulator,
    sampling_probability: float,
    *,
    seed: Optional[int] = None,
    xi: float = DEFAULT_XI,
    forced_nodes: Optional[Sequence[Node]] = None,
) -> SkeletonGraph:
    """Skeleton construction with the paper's round accounting (``h`` local rounds)."""
    skeleton = build_skeleton(
        simulator.graph,
        sampling_probability,
        seed=seed,
        xi=xi,
        forced_nodes=forced_nodes,
    )
    simulator.charge_rounds(
        skeleton.h,
        f"skeleton construction: {skeleton.h}-hop local exploration",
        "Definition 6.2 / Lemma 6.3",
    )
    return skeleton
