"""Theorems 15-17 / Appendix B reproduction: NQ_k on special graph families.

Paper claims:

* Theorem 15: on paths and cycles, NQ_k = Theta(min(sqrt k, D)).
* Theorem 16: on d-dimensional grids, NQ_k = Theta(min(k^{1/(d+1)}, D)).
* Lemma 3.6: on every graph, sqrt(Dk/3n) < NQ_k <= min(D, sqrt k).
* Lemma 3.7: NQ_{alpha k} <= 6 sqrt(alpha) NQ_k.

The benchmark measures NQ_k across the families and k sweeps, prints measured
vs. predicted, fits the growth exponent of NQ_k in k on each family, and
asserts the exponents land near the predicted 1/2 (paths/cycles), 1/3 (2-d
grids) and 1/4 (3-d grids/tori).

It additionally guards the frontier-based analytics engine
(:mod:`repro.graphs.index`):

* ``test_nq_engine_speedup`` — the fast ``NQ_k`` path must beat the Theta(n*m)
  reference implementation by >= 10x at n = 2000 (relaxable on noisy CI
  runners via ``NQ_MIN_SPEEDUP``) while agreeing exactly;
* ``test_nq_large_scale`` — full NQ_k profiles on n ~ 10^5 path / tree / ring
  instances, infeasible before the engine, must complete inside the harness;
* ``test_nq_large_tier`` — the ``default_benchmark_specs("large")`` grid
  (n >= 2000), run by the scheduled CI job (``BENCH_SCALE=large``).
"""

from __future__ import annotations

import math
import os
import time

import pytest

from _artifacts import update_trajectory, write_bench_artifact
from repro.analysis.comparison import fit_power_law_exponent
from repro.analysis.experiments import (
    default_benchmark_specs,
    run_nq_family_point,
    run_nq_scale_point,
)
from repro.core.neighborhood_quality import (
    _reference_neighborhood_quality,
    neighborhood_quality,
)
from repro.graphs.generators import GraphSpec, generate_graph

K_VALUES = [16, 64, 256, 1024]

FAMILIES = {
    "path": (GraphSpec.of("path", n=400), 0.5),
    "cycle": (GraphSpec.of("cycle", n=400), 0.5),
    "grid-2d": (GraphSpec.of("grid", side=20, dim=2), 1.0 / 3.0),
    "torus-3d": (GraphSpec.of("torus", side=8, dim=3), 0.25),
}


def _family_rows():
    rows = []
    for name, (spec, _) in FAMILIES.items():
        for k in K_VALUES:
            row = run_nq_family_point(spec, k)
            row["family"] = name
            rows.append(row)
    return rows


def test_nq_special_families(benchmark, save_table):
    rows = benchmark.pedantic(_family_rows, rounds=1, iterations=1)
    save_table("nq_families", rows, "Theorems 15/16 - NQ_k on special families")
    # Lemma 3.6 bounds hold on every row.
    for row in rows:
        assert row["NQ_k measured"] <= row["upper bound min(D, sqrt k)"] + 1
        assert row["NQ_k measured"] > row["lower bound sqrt(Dk/3n)"] - 1
    # Growth exponents match the predictions (within a generous band that still
    # separates 1/2 from 1/3 from 1/4).
    for name, (spec, predicted_exponent) in FAMILIES.items():
        subset = [row for row in rows if row["family"] == name]
        # Only fit over the k range where the diameter cap is not active.
        active = [row for row in subset if row["NQ_k measured"] < row["D"]]
        if len(active) < 2:
            continue
        exponent, _ = fit_power_law_exponent(
            [row["k"] for row in active], [row["NQ_k measured"] for row in active]
        )
        assert abs(exponent - predicted_exponent) < 0.15, (
            f"{name}: fitted {exponent:.3f}, predicted {predicted_exponent:.3f}"
        )


# ----------------------------------------------------------------------
# Analytics engine guards
# ----------------------------------------------------------------------
SPEEDUP_N = 2000
SPEEDUP_K = 1024
SPEEDUP_REPEATS = 3
#: The acceptance bar on a quiet machine.  Shared CI runners have wall-clock
#: variance, so CI may relax the floor via NQ_MIN_SPEEDUP (exact agreement
#: between the two implementations is never relaxed).
REQUIRED_NQ_SPEEDUP = float(os.environ.get("NQ_MIN_SPEEDUP", "10.0"))


def run_nq_speedup_comparison() -> dict:
    """Time fast vs. reference NQ_k on the n = 2000 path, fresh caches each run."""
    spec = GraphSpec.of("path", n=SPEEDUP_N)

    reference_graph = generate_graph(spec)
    start = time.perf_counter()
    reference_value = _reference_neighborhood_quality(reference_graph, SPEEDUP_K)
    reference_seconds = time.perf_counter() - start

    fast_times = []
    fast_value = None
    for _ in range(SPEEDUP_REPEATS):
        # A fresh graph instance per repeat defeats the per-graph index and
        # NQ memo caches, so the timing includes the CSR build — the honest
        # cold-start cost a caller pays.
        graph = generate_graph(spec)
        start = time.perf_counter()
        fast_value = neighborhood_quality(graph, SPEEDUP_K)
        fast_times.append(time.perf_counter() - start)

    fast_best = min(fast_times)
    return {
        "n": SPEEDUP_N,
        "k": SPEEDUP_K,
        "NQ_k (fast)": fast_value,
        "NQ_k (reference)": reference_value,
        "fast seconds (best of 3, cold cache)": round(fast_best, 4),
        "reference seconds": round(reference_seconds, 4),
        "speedup": round(reference_seconds / fast_best, 1),
        "identical": fast_value == reference_value,
    }


def _check_speedup(row: dict) -> None:
    assert row["identical"], "fast NQ_k disagrees with the reference"
    assert row["speedup"] >= REQUIRED_NQ_SPEEDUP, (
        f"NQ engine speedup {row['speedup']}x below the required "
        f"{REQUIRED_NQ_SPEEDUP}x"
    )


def _write_speedup_artifact(row: dict) -> None:
    write_bench_artifact(
        "nq_engine",
        [row],
        n=SPEEDUP_N,
        k=SPEEDUP_K,
        repeats=SPEEDUP_REPEATS,
        required_speedup=REQUIRED_NQ_SPEEDUP,
    )
    update_trajectory(
        "nq_engine",
        f"frontier NQ_k {row['speedup']}x faster than the Theta(n*m) reference "
        f"(floor {REQUIRED_NQ_SPEEDUP}x) at n={SPEEDUP_N}, k={SPEEDUP_K}",
    )


def test_nq_engine_speedup(save_table):
    row = run_nq_speedup_comparison()
    save_table(
        "nq_speedup",
        [row],
        "NQ analytics engine - frontier ball-growing vs Theta(n*m) reference",
    )
    _write_speedup_artifact(row)
    _check_speedup(row)


LARGE_SCALE_KS = [16, 256, 4096]
LARGE_SCALE_FAMILIES = {
    # with_diameter: exact D via iFUB is cheap on paths and trees; the ring's
    # antipodal symmetry defeats eccentricity pruning, so skip it there.
    "path": (GraphSpec.of("path", n=100_000), True),
    "tree": (GraphSpec.of("tree", branching=2, height=16), True),
    "ring": (GraphSpec.of("cycle", n=100_000), False),
}


def test_nq_large_scale(save_table):
    """n ~ 10^5 NQ_k profiles — the workload the engine was built to unlock."""
    rows = []
    for name, (spec, with_diameter) in LARGE_SCALE_FAMILIES.items():
        row = run_nq_scale_point(spec, LARGE_SCALE_KS, with_diameter=with_diameter)
        row["family"] = name
        rows.append(row)
    save_table("nq_large_scale", rows, "NQ_k profiles at n ~ 10^5 (Theorem 15)")
    for row in rows:
        values = [row[f"NQ_{k}"] for k in LARGE_SCALE_KS]
        # Lemma 3.6 upper bound (the diameter cap is far away at this scale)
        # and monotonicity in k.
        for k, value in zip(LARGE_SCALE_KS, values):
            assert 1 <= value <= math.ceil(math.sqrt(k)) + 1
        assert values == sorted(values)
    by_family = {row["family"]: row for row in rows}
    # Theorem 15: paths and rings are Theta(sqrt k); the tree's exponential
    # ball growth keeps NQ_k near k^(1/3)-ish territory, far below sqrt k.
    assert by_family["path"][f"NQ_{4096}"] >= 0.5 * math.sqrt(4096)
    assert by_family["tree"][f"NQ_{4096}"] < 0.5 * math.sqrt(4096)


def test_nq_large_tier(save_table):
    """The full n >= 2000 benchmark grid; runs in the scheduled CI job."""
    if os.environ.get("BENCH_SCALE") != "large":
        pytest.skip("large tier runs in the scheduled CI job (BENCH_SCALE=large)")
    rows = []
    for spec in default_benchmark_specs("large"):
        for k in (256, 1024):
            rows.append(run_nq_family_point(spec, k))
    save_table("nq_large_tier", rows, "NQ_k on the large (n >= 2000) benchmark grid")
    for row in rows:
        assert row["NQ_k measured"] <= row["upper bound min(D, sqrt k)"] + 1
        assert row["NQ_k measured"] > row["lower bound sqrt(Dk/3n)"] - 1


def main() -> None:
    row = run_nq_speedup_comparison()
    width = max(len(key) for key in row)
    for key, value in row.items():
        print(f"{key:<{width}}  {value}")
    _write_speedup_artifact(row)
    _check_speedup(row)
    print(f"\nOK: NQ analytics engine meets the >= {REQUIRED_NQ_SPEEDUP}x bar.")


if __name__ == "__main__":
    main()
