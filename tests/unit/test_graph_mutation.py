"""Unit tests for the versioned graph-mutation layer.

Covers :class:`~repro.graphs.mutation.GraphMutator` validation and cache
synchronisation, the :class:`~repro.graphs.index.GraphIndex` self-loop
rejection (via the public BFS and Dijkstra entry points), the bounded
``get_index`` fallback memo for non-weakrefable graph-likes, and the
staleness guards downstream of the version stamp: ``SSSPRowCache``,
``DenseDistanceTable`` and the simulator plane-send paths.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs import index as index_module
from repro.graphs.generators import cycle_graph, path_graph
from repro.graphs.index import (
    GraphIndex,
    SSSPRowCache,
    StaleIndexError,
    get_index,
    graph_version,
    invalidate_index,
)
from repro.graphs.mutation import GraphMutator
from repro.graphs.properties import h_hop_limited_distances, weighted_distances_from
from repro.core.shortest_paths import DenseDistanceTable
from repro.simulator.config import ModelConfig
from repro.simulator.errors import StaleGraphError
from repro.simulator.metrics import RoundMetrics
from repro.simulator.network import HybridSimulator


# ----------------------------------------------------------------------
# GraphMutator validation
# ----------------------------------------------------------------------
def test_mutator_rejects_invalid_edits():
    graph = path_graph(5)
    mutator = GraphMutator(graph)
    with pytest.raises(ValueError, match="self-loop"):
        mutator.add_edge(2, 2)
    with pytest.raises(ValueError, match="positive"):
        mutator.add_edge(0, 4, weight=0)
    with pytest.raises(ValueError, match="update_weight"):
        mutator.add_edge(0, 1)  # already present
    with pytest.raises(KeyError):
        mutator.remove_edge(0, 4)  # not an edge
    with pytest.raises(KeyError):
        mutator.update_weight(0, 4, 3)
    with pytest.raises(ValueError, match="positive"):
        mutator.update_weight(0, 1, -1)
    # None of the rejected edits advanced the version stamp.
    assert graph_version(graph) == 0


def test_mutator_returns_monotone_versions_and_syncs_index():
    graph = path_graph(6)
    index = get_index(graph)
    assert index.version == graph_version(graph) == 0
    mutator = GraphMutator(graph)
    v1 = mutator.add_edge(0, 5, weight=2)
    v2 = mutator.update_weight(0, 5, 7)
    v3 = mutator.remove_edge(0, 5)
    assert (v1, v2, v3) == (1, 2, 3)
    assert get_index(graph) is index
    assert index.version == graph_version(graph) == 3


def test_new_node_edge_takes_the_full_drop_path():
    graph = path_graph(4)
    stale = get_index(graph)
    version = GraphMutator(graph).add_edge(3, 99, weight=1)
    assert version == graph_version(graph)
    assert stale.retired
    fresh = get_index(graph)
    assert fresh is not stale
    assert fresh.n == 5 and 99 in fresh.nodes


def test_weight_only_edit_keeps_hop_caches_topology_edit_drops_them():
    graph = path_graph(8)
    nx.set_edge_attributes(graph, 1, "weight")
    index = get_index(graph)
    assert index.is_connected() and index.diameter() == 7
    tie_ranks = index._tie_ranks
    mutator = GraphMutator(graph)
    mutator.update_weight(3, 4, 9)
    # Hop-based caches survive a pure re-weighting untouched.
    assert index._connected is True and index._diameter == 7
    assert index._tie_ranks is tie_ranks
    mutator.add_edge(0, 7, weight=1)
    # A topology edit drops connectivity/diameter (recomputed on demand)...
    assert index._connected is None and index._diameter is None
    # ...but the node set did not change, so tie ranks are kept.
    assert index._tie_ranks is tie_ranks
    assert index.diameter() == 4  # the new chord shortened the path


# ----------------------------------------------------------------------
# Self-loop rejection (CSR double-write regression)
# ----------------------------------------------------------------------
def _looped_graph():
    graph = cycle_graph(6)
    graph.add_edge(2, 2, weight=1)
    return graph


def test_self_loop_rejected_on_bfs_entry_point():
    with pytest.raises(ValueError, match="self-loop"):
        h_hop_limited_distances(_looped_graph(), 0, 3)


def test_self_loop_rejected_on_dijkstra_entry_point():
    with pytest.raises(ValueError, match="self-loop"):
        weighted_distances_from(_looped_graph(), 0)


def test_self_loop_rejected_at_index_construction():
    with pytest.raises(ValueError, match="self-loop"):
        GraphIndex(_looped_graph())


# ----------------------------------------------------------------------
# get_index fallback memo (non-weakrefable graph-likes)
# ----------------------------------------------------------------------
class _UnhashableGraph:
    """A graph-like wrapper that defeats the weak-dict cache.

    Unhashable, so both the weak lookup and the version registry raise
    ``TypeError`` — exercising the bounded id()-keyed fallback memo.
    """

    __hash__ = None  # type: ignore[assignment]

    def __init__(self, graph):
        self._graph = graph

    def __getattr__(self, name):
        return getattr(self._graph, name)

    def __getitem__(self, key):
        return self._graph[key]

    def __contains__(self, node):
        return node in self._graph

    def __len__(self):
        return len(self._graph)

    def __iter__(self):
        return iter(self._graph)


@pytest.fixture
def clean_fallback_cache():
    index_module._FALLBACK_CACHE.clear()
    yield
    index_module._FALLBACK_CACHE.clear()


def test_fallback_memo_serves_repeat_queries(clean_fallback_cache):
    wrapper = _UnhashableGraph(path_graph(5))
    first = get_index(wrapper)
    assert get_index(wrapper) is first  # memoised, not rebuilt per call
    assert first.hop_distance_row(0) == [0, 1, 2, 3, 4]
    invalidate_index(wrapper)
    assert first.retired
    assert get_index(wrapper) is not first


def test_fallback_memo_evicts_fifo_beyond_limit(clean_fallback_cache):
    wrappers = [_UnhashableGraph(path_graph(4)) for _ in range(index_module._FALLBACK_LIMIT + 1)]
    first = get_index(wrappers[0])
    for wrapper in wrappers[1:]:
        get_index(wrapper)
    assert len(index_module._FALLBACK_CACHE) == index_module._FALLBACK_LIMIT
    # The oldest entry was evicted; a repeat query rebuilds it.
    assert get_index(wrappers[0]) is not first
    # The newest entries are still memoised.
    assert get_index(wrappers[-1]) is get_index(wrappers[-1])


def test_mutator_on_unstampable_graph_falls_back_to_full_drop(clean_fallback_cache):
    wrapper = _UnhashableGraph(path_graph(5))
    stale = get_index(wrapper)
    version = GraphMutator(wrapper).add_edge(0, 4, weight=2)
    assert version == 0  # no stamp to advance
    assert stale.retired
    fresh = get_index(wrapper)
    assert fresh is not stale
    assert fresh.hop_distance_row(0)[4] == 1


# ----------------------------------------------------------------------
# Staleness guards: SSSPRowCache, DenseDistanceTable, simulator planes
# ----------------------------------------------------------------------
def test_sssp_row_cache_raises_after_mutation():
    graph = path_graph(6)
    nx.set_edge_attributes(graph, 2, "weight")
    cache = SSSPRowCache(get_index(graph))
    assert cache.row(0)[5] == 10
    GraphMutator(graph).update_weight(0, 1, 5)
    with pytest.raises(StaleIndexError):
        cache.row(0)
    with pytest.raises(StaleIndexError):
        cache.position_of(3)
    # A cache built against the post-edit index works (and sees the edit).
    assert SSSPRowCache(get_index(graph)).row(0)[5] == 13


def test_sssp_row_cache_raises_after_invalidate():
    graph = path_graph(6)
    cache = SSSPRowCache(get_index(graph))
    cache.row(0)
    invalidate_index(graph)
    with pytest.raises(StaleIndexError):
        cache.row(0)


def test_dense_distance_table_guard_raises_after_mutation():
    graph = path_graph(6)
    nx.set_edge_attributes(graph, 1, "weight")
    index = get_index(graph)
    table = DenseDistanceTable(
        row_nodes=index.nodes,
        columns=index.nodes,
        row_factory=index.sssp_row,
        stretch_bound=1.0,
        metrics=RoundMetrics(),
        index=index,
    )
    assert table.estimate(0, 5) == 5
    GraphMutator(graph).remove_edge(2, 3)
    with pytest.raises(StaleIndexError):
        table.row(0)
    with pytest.raises(StaleIndexError):
        table.estimate(0, 5)
    with pytest.raises(StaleIndexError):
        table.estimates


def test_dense_distance_table_without_guard_is_unchecked():
    # Tables over graphs the caller promises not to mutate opt out by
    # omitting ``index=`` — exactly the historical behaviour.
    graph = path_graph(4)
    index = get_index(graph)
    table = DenseDistanceTable(
        row_nodes=index.nodes,
        columns=index.nodes,
        row_factory=index.hop_distance_row,
        stretch_bound=1.0,
        metrics=RoundMetrics(),
    )
    assert table.estimate(0, 3) == 3
    invalidate_index(graph)
    assert table.estimate(0, 3) == 3  # no guard, no raise


def test_simulator_plane_send_raises_until_invalidate_resync():
    graph = path_graph(6)
    sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=3)
    sim.global_send_batch_ids([0], [1], ["before"])
    sim.advance_round()
    GraphMutator(graph).remove_edge(4, 5)  # behind the simulator's back
    with pytest.raises(StaleGraphError, match="invalidate_index"):
        sim.global_send_batch_ids([0], [1], ["stale"])
    with pytest.raises(StaleGraphError):
        sim.local_send_batch_ids([0], [1], ["stale"])
    sim.invalidate_index()  # acknowledge the mutation
    sim.global_send_batch_ids([0], [1], ["after"])
    sim.advance_round()


# ----------------------------------------------------------------------
# apply_batch: k edits, one version bump, one index decision
# ----------------------------------------------------------------------
def test_apply_batch_patches_in_place_below_crossover():
    # path_graph(40): n + m = 79, so 4 edits (cost 16) stay on the patch path.
    graph = path_graph(40)
    index = get_index(graph)
    version = GraphMutator(graph).apply_batch(
        [
            ("add", 0, 5, 2),
            ("update", 0, 1, 3),
            ("remove", 3, 4),
            ("add", 3, 7),
        ]
    )
    # One bump for the whole burst, and the same index object, patched.
    assert version == graph_version(graph) == 1
    assert get_index(graph) is index
    assert index.version == version
    assert graph.has_edge(0, 5) and graph.has_edge(3, 7)
    assert not graph.has_edge(3, 4)
    # Value identity: the patched index answers like a from-scratch build.
    fresh = GraphIndex(graph)
    for source in (0, 7, 39):
        assert index.sssp_dict(source) == fresh.sssp_dict(source)


def test_apply_batch_prefers_rebuild_when_cheaper():
    # path_graph(5): after three adds n + m = 12 and the batch costs
    # 4 * 3 = 12 >= 12, so the planner retires the index instead of patching.
    graph = path_graph(5)
    stale = get_index(graph)
    version = GraphMutator(graph).apply_batch(
        [("add", 0, 2), ("add", 0, 3), ("add", 0, 4)]
    )
    assert version == graph_version(graph) == 1  # still exactly one bump
    assert stale.retired
    fresh = get_index(graph)
    assert fresh is not stale
    assert fresh.sssp_dict(0) == GraphIndex(graph).sssp_dict(0)


def test_apply_batch_empty_is_a_noop():
    graph = path_graph(6)
    index = get_index(graph)
    mutator = GraphMutator(graph)
    assert mutator.apply_batch([]) == 0
    assert graph_version(graph) == 0
    assert get_index(graph) is index and not index.retired


def test_apply_batch_new_node_takes_the_full_drop_path():
    graph = path_graph(20)
    stale = get_index(graph)
    version = GraphMutator(graph).apply_batch([("add", 0, 99, 2)])
    assert version == graph_version(graph) == 1
    assert stale.retired
    assert 99 in get_index(graph).nodes


def test_apply_batch_applies_edits_sequentially():
    # An edge added earlier in the batch may be re-weighted later in it.
    graph = path_graph(30)
    index = get_index(graph)
    version = GraphMutator(graph).apply_batch(
        [("add", 0, 9), ("update", 0, 9, 7)]
    )
    assert version == 1
    assert get_index(graph) is index
    assert graph[0][9]["weight"] == 7
    assert index.sssp_dict(0) == GraphIndex(graph).sssp_dict(0)


def test_apply_batch_rejects_malformed_edits_before_mutating():
    graph = path_graph(6)
    index = get_index(graph)
    mutator = GraphMutator(graph)
    for bad in [("frobnicate", 1, 2), ("add",), ("remove", 1), "add-0-2", ()]:
        with pytest.raises(ValueError, match="batch edit|unsupported"):
            mutator.apply_batch([("add", 0, 2), bad])
        # Staging validates every edit before the first one touches the graph.
        assert not graph.has_edge(0, 2)
    assert graph_version(graph) == 0
    assert get_index(graph) is index and not index.retired


def test_apply_batch_midway_failure_commits_partial_burst_safely():
    graph = path_graph(6)
    stale = get_index(graph)
    with pytest.raises(KeyError):
        GraphMutator(graph).apply_batch([("add", 0, 2), ("remove", 0, 5)])
    # The first edit is on the graph; the burst was still committed as one
    # mutation, so the stale index can never be served.
    assert graph.has_edge(0, 2)
    assert stale.retired
    assert graph_version(graph) == 1
    assert get_index(graph).sssp_dict(0) == GraphIndex(graph).sssp_dict(0)
