"""Vectorised round engine: id-native token planes, sharding, and the phase driver.

The per-message transport in :mod:`repro.core.transport` schedules one
:class:`~repro.core.transport.GlobalTransfer` object at a time through
``global_send_to_node``; at production scale that is dominated by per-message
object churn.  The first batch engine replaced it with whole-round
``(sender, receiver, payload, words)`` tuple workloads; this module's *round
engine* goes one step further and strips the per-token Python work out of the
schedule/send/harvest cycle entirely:

* :class:`TokenPlane` — the id-native workload representation.  A workload is
  parallel arrays of integer **node indices** (positions in the simulator's
  deterministic node order) and word counts; payloads live in a side list that
  the scheduler never touches.  With NumPy installed the arrays are ``int64``
  vectors; the pure-Python fallback stores plain lists (see
  :mod:`repro.simulator._accel` — the dependency surface is unchanged).
* :func:`plan_token_rounds` — the two-tier scheduler.  The **uncongested fast
  path** applies one grouped reduction per side (sent/received words per node);
  when every node fits the per-round budget the whole workload is a single
  shard — no greedy scanning at all, which is the common case for most phases.
  Congested workloads fall to a **vectorised greedy-FIFO** that resolves each
  round with a few whole-array *waves* (upper/lower prefix-sum bounds, see
  ``_admit_round``) and is schedule-identical, token for token, to the legacy
  greedy scanner retained as :func:`_reference_shard_transfers`
  (``tests/properties/test_round_engine.py`` pins the equivalence; the round
  pins in ``tests/unit/test_round_regression.py`` hold bit-for-bit).
* :func:`batched_global_exchange` — runs the shards through the simulator's
  bulk id-native send path
  (:meth:`~repro.simulator.network.HybridSimulator.global_send_plane`) and
  harvests deliveries **directly from the per-shard buckets** — the full inbox
  dict is never rebuilt and never tag-filtered.  Each exchange stamps its
  records with a unique :class:`ExchangeTag` (the caller's documented ``tag``
  as the user-visible prefix plus an internal serial), so concurrent protocols
  sharing a receiver can no longer collide even for observers that read the
  raw inboxes.
* :class:`BatchAlgorithm` — the phase driver.  ``engine="batch"`` (default)
  runs on token planes; ``engine="batch-reference"`` runs the retained tuple
  path (the previous engine, kept as the comparison baseline for the speedup
  benchmarks); ``engine="legacy"`` runs the per-message transport.  All three
  produce identical round counts, inboxes and metrics.

Like the analytics index, the engine treats the simulated graph as **frozen**:
the simulator caches its node-index maps and adjacency id arrays on first use,
so mutating the graph mid-simulation is not detected — call
:meth:`~repro.simulator.network.HybridSimulator.invalidate_index` after a
deliberate mutation (mirroring :func:`repro.graphs.index.invalidate_index`).
"""

from __future__ import annotations

import dataclasses
import itertools
from collections import defaultdict
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.simulator import _accel
from repro.simulator.errors import ChargeOnlyError, UnknownNodeError
from repro.simulator.messages import payload_words
from repro.simulator.network import HybridSimulator

Node = Hashable

__all__ = [
    "GlobalTriple",
    "TokenPlane",
    "ExchangeTag",
    "plan_token_rounds",
    "shard_transfers",
    "batched_global_exchange",
    "resilient_batched_global_exchange",
    "ResilientExchangeResult",
    "PhaseRecord",
    "BatchAlgorithm",
    "install_planner",
    "installed_planner",
]

#: One unit of batch work: ``(sender, receiver, payload)``.
GlobalTriple = Tuple[Node, Node, Any]

#: Internal sharding token: ``(sender, receiver, payload, payload_words)``.
_Token = Tuple[Node, Node, Any, int]

#: Engine switch values accepted by :class:`BatchAlgorithm`.
ENGINES = ("batch", "batch-reference", "legacy")


# ----------------------------------------------------------------------
# Token planes
# ----------------------------------------------------------------------
class TokenPlane:
    """An id-native workload: parallel id arrays plus a payload side list.

    ``senders[i]`` / ``receivers[i]`` are integer **node indices** — positions
    in the simulator's deterministic node order (see
    :meth:`HybridSimulator.node_indexer`) — and ``words[i]`` is the token's
    payload size in words (excluding any shared tag).  ``payloads[i]`` is the
    application object; the scheduler and the capacity accounting never touch
    it.  With NumPy active the three id/word columns are ``int64`` arrays,
    otherwise plain lists — either way the schedule they produce is identical.

    ``payloads`` may be ``None``: a **charge-only** plane carries only the
    three columns.  Scheduling, capacity accounting, round counts and
    HYBRID_0 identifier learning are exact (none of them ever read a
    payload), but content-level operations — :meth:`iter_triples`,
    ``collect=True`` exchanges, inbox reads of the delivered traffic — raise
    :class:`~repro.simulator.errors.ChargeOnlyError`.
    """

    __slots__ = ("senders", "receivers", "words", "payloads", "_pair_spine")

    def __init__(
        self, senders, receivers, words, payloads: Optional[List[Any]] = None
    ) -> None:
        np = _accel.np
        if np is not None:
            self.senders = np.asarray(senders, dtype=np.int64)
            self.receivers = np.asarray(receivers, dtype=np.int64)
            self.words = np.asarray(words, dtype=np.int64)
        else:
            self.senders = list(senders)
            self.receivers = list(receivers)
            self.words = list(words)
        self.payloads = payloads
        self._pair_spine = None

    def __len__(self) -> int:
        return len(self.senders)

    def charge_view(self) -> "TokenPlane":
        """A payload-free view sharing this plane's columns (and spine cache).

        The charge-only substitution at the plane level: the view schedules,
        sends and accounts identically to ``self`` — the columns are the very
        same objects — but carries no payload list, so delivering it does no
        inbox/knowledge payload work.  Already-payload-free planes return
        themselves.
        """
        if self.payloads is None:
            return self
        view = TokenPlane.__new__(TokenPlane)
        view.senders = self.senders
        view.receivers = self.receivers
        view.words = self.words
        view.payloads = None
        view._pair_spine = self._pair_spine
        return view

    def pair_spine(self, np):
        """Sorted positions of each distinct (sender, receiver) pair's first
        occurrence (cached; NumPy columns only).

        Rank-matched workloads repeat a small pair set over a long token
        column; per-pair knowledge work (HYBRID_0 validation and sender-id
        learning) only ever concerns a pair's *first* token, so every shard
        of this plane can intersect this spine instead of scanning its full
        columns.  Computed once per plane with the two-pass narrow-key sort.
        """
        spine = self._pair_spine
        if spine is None:
            order = _pair_order(np, self.senders, self.receivers)
            starts = _pair_starts(np, self.senders, self.receivers, order)
            spine = np.sort(order[starts])
            self._pair_spine = spine
        return spine

    @classmethod
    def from_triples(
        cls, simulator: HybridSimulator, triples: Iterable[Tuple]
    ) -> "TokenPlane":
        """Resolve a tuple workload into a plane (nodes -> indices, sizes once).

        ``triples`` may mix ``(sender, receiver, payload)`` with
        ``(sender, receiver, payload, words)`` entries whose payload size the
        caller already knows.  Unknown nodes raise
        :class:`~repro.simulator.errors.UnknownNodeError` (before anything is
        queued — the plane path validates whole workloads up front).
        """
        index_of = simulator.node_indexer()
        senders: List[int] = []
        receivers: List[int] = []
        words: List[int] = []
        payloads: List[Any] = []
        try:
            for triple in triples:
                if len(triple) == 4:
                    sender, receiver, payload, size = triple
                else:
                    sender, receiver, payload = triple
                    size = payload_words(payload)
                senders.append(index_of[sender])
                receivers.append(index_of[receiver])
                words.append(size)
                payloads.append(payload)
        except KeyError as exc:
            raise UnknownNodeError(exc.args[0]) from None
        return cls(senders, receivers, words, payloads)

    def iter_triples(self, simulator: HybridSimulator) -> Iterable[_Token]:
        """The plane as ``(sender, receiver, payload, words)`` tuples.

        Used to hand a plane to the tuple-based reference and legacy engines
        (equivalence tests and speedup baselines only — the hot path never
        materialises tuples).
        """
        if self.payloads is None:
            raise ChargeOnlyError(
                "charge-only planes carry no payloads and cannot be lowered "
                "to tuples; use the plane engine, or rebuild with payloads"
            )
        nodes = simulator.nodes
        for sender, receiver, payload, size in zip(
            self.senders, self.receivers, self.payloads, self.words
        ):
            yield (nodes[int(sender)], nodes[int(receiver)], payload, int(size))


# ----------------------------------------------------------------------
# Two-tier scheduler
# ----------------------------------------------------------------------
def shard_transfers(
    tokens: Sequence[_Token], budget: int, tag_words: int = 0
) -> Iterable[List[_Token]]:
    """Yield per-round shards of ``tokens`` respecting the per-node ``budget``.

    Greedy FIFO: each round scans the remaining tokens in order and admits a
    token iff its sender and receiver both still have budget left (counting
    ``tag_words`` on top of each token's payload words).  If nothing fits —
    every remaining token is individually larger than the budget — exactly one
    oversized token is forced through (a single oversized message is the
    sender's problem, and the simulator will flag it).

    This is the **reference scheduler** (also aliased as
    ``_reference_shard_transfers``): the vectorised :func:`plan_token_rounds`
    reproduces its shard boundaries exactly and is what the hot path runs;
    this tuple formulation is retained as ground truth for the
    schedule-identity property tests and as the scheduler of the
    ``engine="batch-reference"`` baseline.
    """
    pending: List[_Token] = list(tokens)
    while pending:
        sent: Dict[Node, int] = defaultdict(int)
        received: Dict[Node, int] = defaultdict(int)
        shard: List[_Token] = []
        deferred: List[_Token] = []
        for token in pending:
            sender, receiver, _, words = token
            total = words + tag_words
            if sent[sender] + total <= budget and received[receiver] + total <= budget:
                shard.append(token)
                sent[sender] += total
                received[receiver] += total
            else:
                deferred.append(token)
        if not shard and deferred:
            shard.append(deferred.pop(0))
        yield shard
        pending = deferred


#: Retained ground truth for the schedule-identity property tests.
_reference_shard_transfers = shard_transfers

#: Wave cap for the vectorised admitter: each wave is guaranteed to decide at
#: least the first undecided token, so the cap only bounds adversarial
#: workloads — the sequential tail resolver keeps the schedule exact beyond it.
_MAX_WAVES = 24

#: Below this many tokens the fixed cost of the NumPy machinery exceeds the
#: per-token cost of the plain greedy scan; tiny workloads (ubiquitous in
#: tests and per-level tree traffic) take the Python paths even when NumPy is
#: active.  Both sides of the cutoff produce identical schedules.
_SMALL_WORKLOAD = 64


def _group_starts(np, group, order):
    """Boolean mask (in sorted order) marking the first token of each group."""
    sorted_group = group[order]
    starts = np.empty(order.size, dtype=bool)
    starts[0] = True
    starts[1:] = sorted_group[1:] != sorted_group[:-1]
    return starts


def _grouped_prefix(np, order, starts, weights):
    """Per-group inclusive prefix sums of ``weights``, in token order.

    ``order`` is a stable argsort of the group column and ``starts`` its
    :func:`_group_starts` mask; one cumulative sum plus a per-group offset
    (propagated with ``maximum.accumulate`` — the offsets are nondecreasing in
    sorted order) yields every token's running within-group total in a few C
    passes.
    """
    ws = weights[order]
    cs = np.cumsum(ws)
    base = np.where(starts, cs - ws, 0)
    np.maximum.accumulate(base, out=base)
    out = np.empty(order.size, dtype=np.int64)
    out[order] = cs - base
    return out


def _compress_order(np, order, keep):
    """Restrict a stable sorted-order array to the kept positions.

    ``order`` holds local indices in group-sorted order; ``keep`` is a boolean
    mask over local indices.  Filtering preserves both the grouping and the
    FIFO tie order, so the surviving subset never needs re-sorting — one of
    the two tricks (with the grouped prefix sums) that keeps the whole
    schedule at a handful of C passes per round instead of a sort per wave.
    """
    renumber = np.cumsum(keep) - 1
    return renumber[order[keep[order]]]


def _narrow_sort_key(np, arr):
    """An ``int16`` copy of a non-negative key column when its values fit.

    NumPy's stable argsort is a radix sort for 16-bit integers but a
    comparison sort for wider ones — an order of magnitude apart on the
    key sizes the planner sorts every round.  The returned array is only
    ever used as an argsort key; the caller keeps indexing the original.
    """
    if arr.size and int(arr.max()) < 32767:
        return arr.astype(np.int16)
    return arr


def _pair_order(np, senders, receivers):
    """Stable (sender, receiver) argsort as two narrow-key passes.

    Equivalent to ``np.argsort(senders * stride + receivers, kind="stable")``
    but sorts the two columns separately — receiver first, then sender on the
    receiver-sorted view; stability makes the composition the lexicographic
    order.  Each pass is an int16 radix sort whenever the column fits
    (:func:`_narrow_sort_key`), where the single wide-key sort is always a
    comparison sort.
    """
    first = np.argsort(_narrow_sort_key(np, receivers), kind="stable")
    second = np.argsort(_narrow_sort_key(np, senders[first]), kind="stable")
    return first[second]


def _pair_starts(np, senders, receivers, order):
    """:func:`_group_starts` for the (sender, receiver) pair key columns."""
    ps = senders[order]
    pr = receivers[order]
    starts = np.empty(order.size, dtype=bool)
    starts[0] = True
    starts[1:] = (ps[1:] != ps[:-1]) | (pr[1:] != pr[:-1])
    return starts


def _admit_round_numpy(np, sa, ra, wa, order_s, order_r, budget: int):
    """One greedy-FIFO round, resolved with compressed bound waves (exact).

    ``sa`` / ``ra`` / ``wa`` are the pending tokens of this round in FIFO
    order (tag words already folded into ``wa``) and ``order_s`` / ``order_r``
    their precomputed stable sorted orders.  Returns a boolean admission mask
    identical to the sequential greedy scan.  Each wave brackets every
    still-undecided token between two whole-array bounds:

    * *upper*: base (words of already-admitted earlier same-group tokens)
      plus the grouped prefix sum over the undecided tokens — an overcount of
      the greedy counters, so fitting under it proves admission;
    * *lower*: base plus the token's own words — an undercount, so
      overflowing it proves rejection.

    Decided tokens are then *compressed out*: their admitted words fold into
    the per-position bases and the next wave runs on the (much smaller)
    undecided residue only.  The first undecided token's bounds always
    coincide, so every wave decides at least one token and the loop
    terminates; ``_MAX_WAVES`` merely caps adversarial workloads before the
    sequential tail resolver finishes the residue exactly.
    """
    m = sa.size
    admitted = np.zeros(m, dtype=bool)
    active = np.arange(m, dtype=np.int64)
    base_s = np.zeros(m, dtype=np.int64)
    base_r = np.zeros(m, dtype=np.int64)
    for _ in range(_MAX_WAVES):
        starts_s = _group_starts(np, sa, order_s)
        starts_r = _group_starts(np, ra, order_r)
        upper_s = base_s + _grouped_prefix(np, order_s, starts_s, wa)
        upper_r = base_r + _grouped_prefix(np, order_r, starts_r, wa)
        ok = (upper_s <= budget) & (upper_r <= budget)
        if ok.all():
            admitted[active] = True
            return admitted
        admitted[active[ok]] = True
        # Fold this wave's admissions, then reject against the folded bases:
        # a token whose admitted-prefix alone overflows can never be admitted,
        # so the genuine flip candidates (rejected by the overcount, fitting
        # under the undercount) are all that survives into the next wave.
        ok_w = np.where(ok, wa, 0)
        adm_s = base_s + _grouped_prefix(np, order_s, starts_s, ok_w)
        adm_r = base_r + _grouped_prefix(np, order_r, starts_r, ok_w)
        undecided = ~ok & (adm_s + wa <= budget) & (adm_r + wa <= budget)
        if not undecided.any():
            return admitted
        base_s = adm_s[undecided]
        base_r = adm_r[undecided]
        order_s = _compress_order(np, order_s, undecided)
        order_r = _compress_order(np, order_r, undecided)
        active = active[undecided]
        sa = sa[undecided]
        ra = ra[undecided]
        wa = wa[undecided]

    # Sequential tail: exact greedy over the (rare) undecided residue, seeded
    # with the admitted-prefix bases the waves already established.
    extra_s: Dict[int, int] = {}
    extra_r: Dict[int, int] = {}
    for k in range(active.size):
        si = int(sa[k])
        ri = int(ra[k])
        wi = int(wa[k])
        if (
            int(base_s[k]) + extra_s.get(si, 0) + wi <= budget
            and int(base_r[k]) + extra_r.get(ri, 0) + wi <= budget
        ):
            admitted[int(active[k])] = True
            extra_s[si] = extra_s.get(si, 0) + wi
            extra_r[ri] = extra_r.get(ri, 0) + wi
    return admitted


def _pair_round_bounds(np, senders, receivers, wt, budget: int):
    """Static per-token lower bounds on the round a token can be admitted in.

    Within one (sender, receiver) pair of a uniform-word workload, tokens are
    admitted in FIFO order (identical constraints, equal words) and at most
    ``c = budget // words`` of them fit any single round (the sender's cap),
    so the token with static pair-rank ``q`` cannot move before round
    ``q // c`` — *whatever* the rest of the schedule does.  The round loop
    uses this to scan only the handful of currently-admissible tokens per
    round instead of the whole pending backlog.  Returns ``None`` (no
    pruning) for mixed-size or oversized workloads.
    """
    w0 = int(wt[0])
    if int(wt.max()) != w0 or int(wt.min()) != w0:
        return None
    per_round = budget // w0
    if per_round <= 0:
        return None
    order = _pair_order(np, senders, receivers)
    starts = _pair_starts(np, senders, receivers, order)
    rank = _grouped_prefix(np, order, starts, np.ones(senders.size, dtype=np.int64))
    return (rank - 1) // per_round


def _split_rounds(np, rounds):
    """Round indices -> per-round position shards, FIFO within each round.

    ``rounds`` must occupy a gap-free ``0..max`` range (component schedules
    are each gap-free and share round 0, so their union is too).
    """
    by_round = np.argsort(_narrow_sort_key(np, rounds), kind="stable")
    sorted_rounds = rounds[by_round]
    edges = np.searchsorted(sorted_rounds, np.arange(int(sorted_rounds[-1]) + 2))
    return [by_round[edges[i] : edges[i + 1]] for i in range(edges.size - 1)]


def _plan_rounds_uniform(np, senders, receivers, wt, budget: int, min_round):
    """Exact component decomposition for uniform-word workloads.

    Greedy-FIFO admission reads only a token's own sender and receiver
    counters, so sender/receiver-disjoint components schedule independently
    and the global schedule is their round-wise union.  Two components have
    closed forms:

    * a *clean* sender — sharing no receiver with any other sender — owns an
      isolated component in which no exclusive receiver's counter (a subset
      of the sender's own) can ever bind first, so the greedy scan admits
      exactly its first ``c = budget // words`` remaining tokens per round:
      round = ``sender_rank // c``;
    * when every sender talks to a single receiver (hot receivers), the
      mirror argument gives round = ``receiver_rank // c``.

    The residue — senders entangled through shared receivers — is planned by
    the bucketed round loop over its (typically tiny) token subset, and all
    component schedules interleave back in FIFO order per round.  The caller
    guarantees uniform words with ``c >= 1``.
    """
    w0 = int(wt[0])
    per_round = budget // w0
    m = senders.size
    ones = np.ones(m, dtype=np.int64)
    order_r = np.argsort(_narrow_sort_key(np, receivers), kind="stable")
    rr = receivers[order_r]
    sr = senders[order_r]
    starts_r = np.empty(m, dtype=bool)
    starts_r[0] = True
    starts_r[1:] = rr[1:] != rr[:-1]
    group_at = np.flatnonzero(starts_r)
    shared = np.minimum.reduceat(sr, group_at) != np.maximum.reduceat(sr, group_at)
    if not shared.any():
        # Every sender is clean: the whole workload is in closed form.
        order_s = np.argsort(_narrow_sort_key(np, senders), kind="stable")
        rank = _grouped_prefix(
            np, order_s, _group_starts(np, senders, order_s), ones
        )
        return _split_rounds(np, (rank - 1) // per_round)
    order_s = np.argsort(_narrow_sort_key(np, senders), kind="stable")
    ss = senders[order_s]
    rs = receivers[order_s]
    if not ((ss[1:] == ss[:-1]) & (rs[1:] != rs[:-1])).any():
        # Sender-exclusive: only the receiver caps can bind.
        rank = _grouped_prefix(np, order_r, starts_r, ones)
        return _split_rounds(np, (rank - 1) // per_round)
    counts = np.diff(np.append(group_at, m))
    entangled = np.zeros(int(senders.max()) + 1, dtype=bool)
    entangled[sr[np.repeat(shared, counts)]] = True
    dirty = entangled[senders]
    if dirty.all():
        return _plan_rounds_bucketed(np, senders, receivers, wt, budget, min_round)
    rounds = np.empty(m, dtype=np.int64)
    clean = ~dirty
    cs = senders[clean]
    order_cs = np.argsort(_narrow_sort_key(np, cs), kind="stable")
    rank = _grouped_prefix(
        np,
        order_cs,
        _group_starts(np, cs, order_cs),
        np.ones(cs.size, dtype=np.int64),
    )
    rounds[clean] = (rank - 1) // per_round
    didx = np.flatnonzero(dirty)
    sub = _plan_rounds_bucketed(
        np, senders[didx], receivers[didx], wt[didx], budget, min_round[didx]
    )
    for index, shard in enumerate(sub):
        rounds[didx[shard]] = index
    return _split_rounds(np, rounds)


def _plan_rounds_bucketed(np, senders, receivers, wt, budget: int, min_round):
    """Greedy-FIFO planning for uniform-word workloads, bucketed by bound.

    The static :func:`_pair_round_bounds` lower bounds partition the workload
    into per-round admission buckets.  Deferred tokens are *re*-bucketed with
    a dynamic bound: a token left behind with ``j`` same-pair tokens still
    ahead of it needs ``j + 1 <= c * (rounds elapsed)`` pair slots before it
    can move, so it cannot be admitted before round ``current + 1 + j // c``
    — and in every earlier round the greedy scan provably rejects it (its
    unadmitted same-pair predecessor faces identical counters first, and
    rejections leave the counters untouched), so omitting it from those scans
    is exact.  Per-round work therefore scales with the tokens that can
    actually move this round instead of the whole eligible backlog, while the
    shard boundaries stay identical to :func:`_reference_shard_transfers`.
    Every unadmitted token sits in a bucket no later than its true admission
    round (the bounds are valid), so the pending set always contains this
    round's reference admissions and in particular never runs dry.
    """
    w0 = int(wt[0])
    per_round = budget // w0
    order = np.argsort(_narrow_sort_key(np, min_round), kind="stable")
    bounds_sorted = min_round[order]
    last_bound = int(bounds_sorted[-1])
    bucket_edges = np.searchsorted(bounds_sorted, np.arange(last_bound + 2))
    narrow = int(receivers.max()) < 32767 and int(senders.max()) < 32767
    buckets: Dict[int, list] = {}
    shards = []
    remaining = senders.size
    round_index = 0
    while remaining:
        chunks = buckets.pop(round_index, [])
        if round_index <= last_bound:
            fresh = order[bucket_edges[round_index] : bucket_edges[round_index + 1]]
            if fresh.size:
                chunks.append(fresh)
        if not chunks:
            # Unreachable (see docstring), kept as a liveness backstop: fold
            # every deferred bucket back in rather than spin on empty rounds.
            for deferred in buckets.values():
                chunks.extend(deferred)
            buckets.clear()
        if len(chunks) == 1:
            pending = chunks[0]
        else:
            pending = np.concatenate(chunks)
            pending.sort()
        es = senders[pending]
        er = receivers[pending]
        ew = wt[pending]
        if narrow:
            order_s = np.argsort(es.astype(np.int16), kind="stable")
            order_r = np.argsort(er.astype(np.int16), kind="stable")
        else:
            order_s = np.argsort(es, kind="stable")
            order_r = np.argsort(er, kind="stable")
        admitted = _admit_round_numpy(np, es, er, ew, order_s, order_r, budget)
        if admitted.all():
            shards.append(pending)
            remaining -= pending.size
        else:
            # The forced-oversized branch of the reference scheduler is
            # unreachable here — one uniform token always fits a round, so the
            # FIFO-first pending token is always admitted (admitted.any()).
            shards.append(pending[admitted])
            remaining -= int(admitted.sum())
            rejected = ~admitted
            deferred = pending[rejected]
            ds = es[rejected]
            dr = er[rejected]
            porder = _pair_order(np, ds, dr)
            starts = _pair_starts(np, ds, dr, porder)
            ahead = (
                _grouped_prefix(
                    np, porder, starts, np.ones(ds.size, dtype=np.int64)
                )
                - 1
            )
            extra = ahead // per_round
            depth = int(extra.max())
            if depth == 0:
                buckets.setdefault(round_index + 1, []).append(deferred)
            else:
                for gap in range(depth + 1):
                    chunk = deferred[extra == gap]
                    if chunk.size:
                        buckets.setdefault(round_index + 1 + gap, []).append(chunk)
        round_index += 1
    return shards


def _plan_rounds_numpy(np, senders, receivers, wt, budget: int):
    """Vectorised :func:`plan_token_rounds` body (NumPy active).

    Tier 1 — uncongested fast path: one grouped reduction per side; when every
    node's totals fit the budget the whole workload is a single shard and no
    greedy state is ever built.  Tier 2 — uniform-word workloads decompose
    into independent components with closed-form schedules plus a small
    entangled residue (:func:`_plan_rounds_uniform`) that runs the bucketed
    round loop (:func:`_plan_rounds_bucketed`) over the *admissible* tokens
    only (see :func:`_pair_round_bounds`; tokens whose pair rank proves they
    cannot move yet are never scanned, which is exact because greedy counters
    only ever count admitted tokens).  Mixed-size workloads keep the dense
    compression loop below.
    """
    sent = np.bincount(senders, weights=wt, minlength=1)
    if sent.max() <= budget:
        recv = np.bincount(receivers, weights=wt, minlength=1)
        if recv.max() <= budget:
            return [np.arange(senders.size, dtype=np.int64)]
    min_round = _pair_round_bounds(np, senders, receivers, wt, budget)
    if min_round is not None:
        return _plan_rounds_uniform(np, senders, receivers, wt, budget, min_round)
    shards = []
    positions = np.arange(senders.size, dtype=np.int64)
    s = senders
    r = receivers
    w = wt
    # The only sorts of the whole schedule: the pending orders are maintained
    # by order-preserving boolean compression from here on.
    order_s = np.argsort(s, kind="stable")
    order_r = np.argsort(r, kind="stable")
    while positions.size:
        admitted = _admit_round_numpy(np, s, r, w, order_s, order_r, budget)
        if admitted.any():
            shards.append(positions[admitted])
            deferred = ~admitted
        else:
            # Forced-oversized branch: exactly one token pushed through (the
            # first pending token; a single oversized message is the sender's
            # problem, and the simulator will flag it).
            shards.append(positions[:1])
            deferred = np.ones(positions.size, dtype=bool)
            deferred[0] = False
        if not deferred.any():
            break
        positions = positions[deferred]
        s = s[deferred]
        r = r[deferred]
        w = w[deferred]
        order_s = _compress_order(np, order_s, deferred)
        order_r = _compress_order(np, order_r, deferred)
    return shards


def _plan_rounds_python(senders, receivers, wt, budget: int):
    """Pure-Python :func:`plan_token_rounds` body (no NumPy).

    The same greedy-FIFO as :func:`_reference_shard_transfers`, over flat int
    arrays and integer-keyed counters instead of token tuples and node-keyed
    defaultdicts.
    """
    shards = []
    pending = list(range(len(wt)))
    while pending:
        sent: Dict[int, int] = {}
        received: Dict[int, int] = {}
        shard: List[int] = []
        deferred: List[int] = []
        for i in pending:
            si = senders[i]
            w = wt[i]
            new_sent = sent.get(si, 0) + w
            if new_sent <= budget:
                ri = receivers[i]
                new_recv = received.get(ri, 0) + w
                if new_recv <= budget:
                    shard.append(i)
                    sent[si] = new_sent
                    received[ri] = new_recv
                    continue
            deferred.append(i)
        if not shard and deferred:
            shard.append(deferred.pop(0))
        shards.append(shard)
        pending = deferred
    return shards


def plan_token_rounds(
    plane: TokenPlane, budget: int, tag_words: int = 0
) -> List[Sequence[int]]:
    """Schedule ``plane`` into per-round shards of token *positions*.

    Two-tier: a workload whose per-node sent/received totals all fit ``budget``
    is one shard resolved by a single grouped reduction; congested workloads
    run the vectorised greedy-FIFO.  The shard boundaries are identical to
    :func:`_reference_shard_transfers` on the same token sequence (including
    the forced-oversized branch), so round counts never depend on which
    scheduler — or which array backend — executed the workload.
    """
    m = len(plane)
    if m == 0:
        return []
    np = _accel.np
    if np is not None and m >= _SMALL_WORKLOAD:
        wt = plane.words + tag_words if tag_words else plane.words
        return _plan_rounds_numpy(np, plane.senders, plane.receivers, wt, budget)
    senders = plane.senders
    receivers = plane.receivers
    words = plane.words
    if hasattr(senders, "tolist"):
        senders = senders.tolist()
        receivers = receivers.tolist()
        words = words.tolist()
    wt = [w + tag_words for w in words] if tag_words else words
    return _plan_rounds_python(senders, receivers, wt, budget)


# ----------------------------------------------------------------------
# Pluggable planner (sharded multi-core scheduling, see repro.simulator.sharding)
# ----------------------------------------------------------------------
#: The installed planner (``None`` = single-process :func:`plan_token_rounds`)
#: and whether the ``REPRO_SHARD_WORKERS`` environment default was resolved.
_active_planner: Optional[Any] = None
_env_planner_resolved = False


def install_planner(planner: Optional[Any]) -> None:
    """Route every exchange's scheduling through ``planner`` (a
    :class:`~repro.simulator.sharding.ShardedPlanner`, or anything with the
    same ``plan(plane, budget, tag_words)`` contract).

    ``install_planner(None)`` restores single-process planning *and* marks the
    environment default as resolved, so tests that installed a planner can
    deterministically uninstall it regardless of ``REPRO_SHARD_WORKERS``.
    Planners are schedule-preserving by contract — installing one never
    changes a shard boundary, only which cores compute it.
    """
    global _active_planner, _env_planner_resolved
    _active_planner = planner
    _env_planner_resolved = True


def installed_planner() -> Optional[Any]:
    """The active planner, resolving the ``REPRO_SHARD_WORKERS`` environment
    default lazily on first use (the sharding module imports this one, so the
    import below cannot run at module load)."""
    global _active_planner, _env_planner_resolved
    if not _env_planner_resolved:
        _env_planner_resolved = True
        from repro.simulator.sharding import planner_from_env

        _active_planner = planner_from_env()
    return _active_planner


def _planned_rounds(plane: TokenPlane, budget: int, tag_words: int):
    """Scheduling entry point of the exchanges: the installed sharded planner
    when one is active, the single-process :func:`plan_token_rounds` otherwise
    (both produce identical shards — see the sharding module's identity
    suite)."""
    planner = installed_planner()
    if planner is None:
        return plan_token_rounds(plane, budget, tag_words)
    return planner.plan(plane, budget, tag_words)


# ----------------------------------------------------------------------
# Exchange tags
# ----------------------------------------------------------------------
_EXCHANGE_SERIAL = itertools.count(1)


class ExchangeTag(str):
    """A collision-proof routing tag: user prefix plus a unique serial.

    Every :func:`batched_global_exchange` stamps its records with one of
    these, so two concurrent protocols that share both a receiver and a
    documented ``tag`` remain distinguishable in the raw inboxes (the
    historical foreign-traffic caveat).  The string value is
    ``"<prefix>#<serial>"`` (``"#<serial>"`` for ``tag=None``); equality and
    hashing are the full unique string.  The *charged* size is that of the
    user-visible prefix alone — the serial is engine bookkeeping, not protocol
    payload — via the ``payload_words_override`` hook in
    :func:`repro.simulator.messages.payload_words`, which keeps every round
    pin and word count identical to the reference engines.
    """

    prefix: Optional[str]
    payload_words_override: int

    def __new__(cls, prefix: Optional[str], serial: Optional[int] = None) -> "ExchangeTag":
        if serial is None:
            serial = next(_EXCHANGE_SERIAL)
        text = f"{prefix}#{serial}" if prefix is not None else f"#{serial}"
        tag = super().__new__(cls, text)
        tag.prefix = prefix
        tag.payload_words_override = payload_words(prefix) if prefix is not None else 0
        return tag


# ----------------------------------------------------------------------
# Exchanges
# ----------------------------------------------------------------------
def batched_global_exchange(
    simulator: HybridSimulator,
    triples: Union[TokenPlane, Iterable[Tuple]],
    *,
    tag: Optional[str] = None,
    max_rounds: Optional[int] = None,
    collect: bool = True,
    charge_only: bool = False,
) -> Dict[Node, List[Any]]:
    """Deliver a workload over the global mode without exceeding capacity.

    The plane counterpart of
    :func:`~repro.core.transport.throttled_global_exchange`: the workload —
    a :class:`TokenPlane`, or any iterable of ``(sender, receiver, payload[,
    words])`` tuples, which is resolved into a plane once up front — is
    scheduled by :func:`plan_token_rounds` and each shard is submitted with one
    :meth:`~repro.simulator.network.HybridSimulator.global_send_plane` call and
    one ``advance_round``.  Deliveries are harvested **directly from the shard
    buckets** (receiver indices and payload positions the scheduler already
    holds) — the per-round inbox dict is never rebuilt and never tag-filtered,
    so unrelated traffic queued by the caller in the same rounds can never
    leak into the result, whatever tag it carries.  Records are stamped with a
    unique :class:`ExchangeTag` derived from ``tag``.  Returns ``receiver ->
    [payloads in delivery order]`` — or ``{}`` without assembling anything
    when ``collect=False`` (several broadcast algorithms track delivery state
    themselves and ignore the result).  Raises ``RuntimeError`` if
    ``max_rounds`` is given and the schedule would exceed it.

    With ``charge_only=True`` the plane is demoted to its payload-free
    :meth:`~TokenPlane.charge_view` before anything is queued: schedules,
    rounds and metrics are bit-identical (the scheduler and the accounting
    only ever read the id/word columns), but no payload is retained anywhere.
    ``collect=True`` on a payload-free workload — whether demoted here or
    submitted as a payload-free plane — raises
    :class:`~repro.simulator.errors.ChargeOnlyError` rather than silently
    returning nothing.
    """
    plane = (
        triples
        if isinstance(triples, TokenPlane)
        else TokenPlane.from_triples(simulator, triples)
    )
    if charge_only:
        plane = plane.charge_view()
    if collect and plane.payloads is None:
        raise ChargeOnlyError(
            "collect=True requires payloads; charge-only exchanges must pass "
            "collect=False (delivery state, if needed, is tracked by the caller)"
        )
    if not len(plane):
        return {}
    exchange_tag = ExchangeTag(tag)
    budget = simulator.global_budget_words()
    shards = _planned_rounds(plane, budget, exchange_tag.payload_words_override)
    if (
        len(shards) == 1
        and len(shards[0]) == len(plane)
        and (max_rounds is None or max_rounds >= 1)
    ):
        # Uncongested fast path: the whole workload is one shard — hand the
        # plane's own columns through (no position selection, no copies).
        simulator.global_send_plane(plane, None, exchange_tag)
        simulator.advance_round()
        if not collect:
            return {}
        nodes = simulator.nodes
        receivers = plane.receivers
        delivered: Dict[Node, List[Any]] = defaultdict(list)
        for position, payload in enumerate(plane.payloads):
            delivered[nodes[receivers[position]]].append(payload)
        return dict(delivered)
    if max_rounds is not None and len(shards) > max_rounds:
        # Mirror the reference behaviour: the allowed rounds run before the
        # overflow is reported, so partial metrics match shard for shard.
        for shard in shards[:max_rounds]:
            simulator.global_send_plane(plane, shard, exchange_tag)
            simulator.advance_round()
        raise RuntimeError(
            f"batched exchange exceeded the allowed {max_rounds} rounds"
        )
    if not collect:
        for shard in shards:
            simulator.global_send_plane(plane, shard, exchange_tag)
            simulator.advance_round()
        return {}
    nodes = simulator.nodes
    receivers = plane.receivers
    payloads = plane.payloads
    delivered: Dict[Node, List[Any]] = defaultdict(list)
    for shard in shards:
        simulator.global_send_plane(plane, shard, exchange_tag)
        simulator.advance_round()
        positions = shard.tolist() if hasattr(shard, "tolist") else shard
        for position in positions:
            delivered[nodes[receivers[position]]].append(payloads[position])
    return dict(delivered)


def _reference_batched_global_exchange(
    simulator: HybridSimulator,
    triples: Iterable[Tuple],
    *,
    tag: Optional[str] = None,
    max_rounds: Optional[int] = None,
) -> Dict[Node, List[Any]]:
    """The retained tuple-based exchange (the previous engine's hot path).

    Token-shards with :func:`_reference_shard_transfers`, submits each shard
    with ``global_send_batch`` and harvests by rebuilding the round's inbox
    dict and tag-filtering per receiver.  Kept as the baseline the speedup
    benchmarks and equivalence tests compare the plane engine against; do not
    use in new code.  (It inherits the historical caveat: foreign traffic that
    shares both the tag and a receiver with a shard is indistinguishable.)
    """
    from repro.simulator.messages import GLOBAL_MODE

    tokens: List[_Token] = [
        triple
        if len(triple) == 4
        else (triple[0], triple[1], triple[2], payload_words(triple[2]))
        for triple in triples
    ]
    if not tokens:
        return {}
    tag_words = payload_words(tag) if tag is not None else 0
    budget = simulator.global_budget_words()
    delivered: Dict[Node, List[Any]] = defaultdict(list)
    rounds_used = 0
    for shard in _reference_shard_transfers(tokens, budget, tag_words):
        if max_rounds is not None and rounds_used >= max_rounds:
            raise RuntimeError(
                f"batched exchange exceeded the allowed {max_rounds} rounds"
            )
        simulator.global_send_batch(shard, tag)
        simulator.advance_round()
        rounds_used += 1
        inbox = simulator.per_node_inbox(GLOBAL_MODE)
        for receiver in {token[1] for token in shard}:
            payloads = [record[1] for record in inbox.get(receiver, ()) if record[2] == tag]
            if payloads:
                delivered[receiver].extend(payloads)
    return dict(delivered)


# ----------------------------------------------------------------------
# Self-healing exchange (fault-tolerant delivery, see repro.simulator.faults)
# ----------------------------------------------------------------------
@dataclasses.dataclass
class ResilientExchangeResult:
    """Outcome of one :func:`resilient_batched_global_exchange`.

    ``delivered`` maps receivers to payloads in delivery order (first
    successful delivery only — retransmitted duplicates that both survive are
    deduplicated by plane position).  ``undelivered_positions`` are positions
    into the submitted plane whose tokens never got through within the attempt
    budget (e.g. endpoints crashed for the whole run); ``complete`` is true
    when everything was delivered.
    """

    delivered: Dict[Node, List[Any]]
    undelivered_positions: List[int]
    attempts: int
    retransmissions: int

    @property
    def complete(self) -> bool:
        return not self.undelivered_positions


def resilient_batched_global_exchange(
    simulator: HybridSimulator,
    triples: Union[TokenPlane, Iterable[Tuple]],
    *,
    tag: Optional[str] = None,
    max_attempts: int = 16,
    backoff_cap: int = 8,
    collect: bool = True,
    charge_only: bool = False,
) -> ResilientExchangeResult:
    """Ack-tracked delivery with retransmission under a fault schedule.

    The self-healing counterpart of :func:`batched_global_exchange`: the
    workload is scheduled and sent the same way, but after every round the
    positions actually delivered (the fault layer's survivors, read back via
    :meth:`~repro.simulator.network.HybridSimulator.delivered_plane_positions`)
    are treated as acks, and undelivered tokens are re-scheduled in the next
    *attempt*.  Each attempt

    * masks crashed endpoints out of the send/receive columns **before** the
      scheduler runs (a token to or from a currently-crashed node is deferred,
      not submitted — dead endpoints never waste budget), and
    * re-reads :meth:`~repro.simulator.network.HybridSimulator.
      global_budget_words`, so capacity-degradation windows are re-planned
      with the budget they impose.

    Attempts that make no progress idle-wait with **bounded exponential
    backoff in rounds** (1, 2, 4, ... up to ``backoff_cap`` idle rounds
    between attempts), letting crash/degradation windows expire without
    hammering a dead network.  Every token submitted a second or later time is
    counted in :attr:`~repro.simulator.metrics.RoundMetrics.retransmissions`.

    Without a fault schedule every token is acked on its first attempt and the
    traffic pattern is identical to :func:`batched_global_exchange` (same
    scheduler, same budget, same shard submissions).  With one, delivery is
    guaranteed for every token whose endpoints are live-and-reachable often
    enough within ``max_attempts`` — tokens addressed to forever-crashed nodes
    come back in ``undelivered_positions`` instead of looping forever.
    """
    if max_attempts < 1:
        raise ValueError("max_attempts must be at least 1")
    if backoff_cap < 1:
        raise ValueError("backoff_cap must be at least 1")
    plane = (
        triples
        if isinstance(triples, TokenPlane)
        else TokenPlane.from_triples(simulator, triples)
    )
    if charge_only:
        plane = plane.charge_view()
    if collect and plane.payloads is None:
        # The ack channel (delivered_plane_positions) is position-based and
        # fully charge-only compatible; only payload harvest is impossible.
        raise ChargeOnlyError(
            "collect=True requires payloads; charge-only resilient exchanges "
            "must pass collect=False (acks and undelivered positions are "
            "still tracked exactly)"
        )
    total = len(plane)
    if not total:
        return ResilientExchangeResult({}, [], 0, 0)
    senders = plane.senders
    receivers = plane.receivers
    words = plane.words
    if hasattr(senders, "tolist"):
        senders = senders.tolist()
        receivers = receivers.tolist()
        words = words.tolist()
    payloads = plane.payloads
    nodes = simulator.nodes
    fault_state = simulator.fault_state
    metrics = simulator.metrics
    delivered: Dict[Node, List[Any]] = defaultdict(list)
    pending: List[int] = list(range(total))
    submitted_once: set = set()
    retransmitted = 0
    attempts = 0
    backoff = 1
    while pending and attempts < max_attempts:
        attempts += 1
        if fault_state is not None:
            crashed = fault_state.crashed_indices(simulator.round)
            sendable = [
                p
                for p in pending
                if senders[p] not in crashed and receivers[p] not in crashed
            ]
        else:
            sendable = pending
        progressed = False
        if sendable:
            resent = sum(1 for p in sendable if p in submitted_once)
            if resent:
                retransmitted += resent
                metrics.record_retransmissions(resent)
            submitted_once.update(sendable)
            attempt_plane = TokenPlane(
                [senders[p] for p in sendable],
                [receivers[p] for p in sendable],
                [words[p] for p in sendable],
                None if payloads is None else [payloads[p] for p in sendable],
            )
            attempt_tag = ExchangeTag(tag)
            budget = simulator.global_budget_words()
            shards = _planned_rounds(
                attempt_plane, budget, attempt_tag.payload_words_override
            )
            acked: set = set()
            for shard in shards:
                simulator.global_send_plane(attempt_plane, shard, attempt_tag)
                simulator.advance_round()
                for sub_position in simulator.delivered_plane_positions(attempt_tag):
                    position = sendable[sub_position]
                    if position in acked:
                        continue
                    acked.add(position)
                    if collect:
                        delivered[nodes[receivers[position]]].append(
                            payloads[position]
                        )
            if acked:
                progressed = True
                pending = [p for p in pending if p not in acked]
        if not pending:
            break
        if progressed:
            backoff = 1
        elif attempts < max_attempts:
            simulator.advance_rounds(backoff)
            backoff = min(backoff * 2, backoff_cap)
    return ResilientExchangeResult(
        delivered=dict(delivered),
        undelivered_positions=pending,
        attempts=attempts,
        retransmissions=retransmitted,
    )


@dataclasses.dataclass(frozen=True)
class PhaseRecord:
    """Round/message accounting of one driver phase (deltas, not totals).

    The three fault counters default to zero so fault-free phase logs (and
    expected records constructed in tests) are unchanged by the fault layer.
    """

    name: str
    measured_rounds: int
    charged_rounds: int
    global_messages: int
    local_messages: int
    dropped_messages: int = 0
    retransmissions: int = 0
    crashed_node_rounds: int = 0


class BatchAlgorithm:
    """Base class for algorithms driven as a sequence of batch phases.

    Subclasses implement :meth:`phases` — an ordered sequence of
    ``(name, callable)`` pairs, each moving whole rounds of traffic through
    :meth:`exchange` — and :meth:`finish`, which assembles the result object.
    :meth:`run` executes the phases in order and records a
    :class:`PhaseRecord` delta for each in :attr:`phase_log`.

    Parameters
    ----------
    simulator: the network.
    engine: ``"batch"`` (default) routes exchanges through the id-native
        :func:`batched_global_exchange`; ``"batch-reference"`` routes them
        through the retained tuple engine
        (:func:`_reference_batched_global_exchange`, the previous hot path,
        kept as the speedup baseline); ``"legacy"`` routes them through the
        per-message :func:`~repro.core.transport.throttled_global_exchange`.
        All three produce identical inboxes, metrics and round counts — the
        slower paths exist so equivalence tests and benchmarks can compare.
    charge_only: when true, every :meth:`exchange` demotes its workload to a
        payload-free charge view before queueing — metrics and round counts
        stay bit-identical to the payload run (property-pinned), but no
        payload is materialised or retained, which is what makes n ~ 10^6
        metrics-only experiments feasible.  Requires ``engine="batch"``
        (the comparison engines are tuple-based and cannot run without
        payloads).
    """

    def __init__(
        self,
        simulator: HybridSimulator,
        *,
        engine: str = "batch",
        charge_only: bool = False,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; use one of {', '.join(ENGINES)}"
            )
        if charge_only and engine != "batch":
            raise ValueError(
                f"charge_only requires engine='batch'; the {engine!r} engine "
                f"materialises payload tuples and cannot run charge-only"
            )
        self.simulator = simulator
        self.engine = engine
        self.charge_only = bool(charge_only)
        self.phase_log: List[PhaseRecord] = []

    # ------------------------------------------------------------------
    def phases(self) -> Sequence[Tuple[str, Callable[[], None]]]:
        """Ordered (name, callable) pairs; override in subclasses."""
        raise NotImplementedError

    def finish(self) -> Any:
        """Assemble the algorithm's result after all phases ran; override."""
        raise NotImplementedError

    def run(self) -> Any:
        metrics = self.simulator.metrics
        for name, phase in self.phases():
            measured = metrics.measured_rounds
            charged = metrics.charged_rounds
            global_msgs = metrics.global_messages
            local_msgs = metrics.local_messages
            dropped = metrics.dropped_messages
            retransmitted = metrics.retransmissions
            crashed = metrics.crashed_node_rounds
            phase()
            self.phase_log.append(
                PhaseRecord(
                    name=name,
                    measured_rounds=metrics.measured_rounds - measured,
                    charged_rounds=metrics.charged_rounds - charged,
                    global_messages=metrics.global_messages - global_msgs,
                    local_messages=metrics.local_messages - local_msgs,
                    dropped_messages=metrics.dropped_messages - dropped,
                    retransmissions=metrics.retransmissions - retransmitted,
                    crashed_node_rounds=metrics.crashed_node_rounds - crashed,
                )
            )
        return self.finish()

    # ------------------------------------------------------------------
    @property
    def use_batch(self) -> bool:
        """Whether exchanges run on a batch path (plane or tuple reference)."""
        return self.engine != "legacy"

    @property
    def use_plane(self) -> bool:
        """Whether exchanges run on the id-native token-plane path."""
        return self.engine == "batch"

    def exchange(
        self,
        triples: Union[TokenPlane, Sequence[Tuple]],
        tag: Optional[str] = None,
        *,
        max_rounds: Optional[int] = None,
        collect: bool = True,
    ) -> Dict[Node, List[Any]]:
        """Move a workload of tokens (a plane, or triples) over the global mode.

        Token-shards the workload over as many rounds as the per-node budget
        requires.  The token order is the schedule order, so every engine
        produces identical shard boundaries and round counts.  Algorithms that
        already hold id arrays should pass a :class:`TokenPlane`; tuple
        workloads are resolved into one internally on the plane engine (and
        planes are lowered to tuples on the comparison engines).  Pass
        ``collect=False`` when the caller tracks deliveries itself and would
        discard the result dict — the *plane* engine then skips the harvest
        entirely, while the comparison engines deliberately keep their
        historical unconditional harvest so benchmarks measure the real
        previous hot path.
        """
        if isinstance(triples, TokenPlane):
            if not len(triples):
                return {}
        elif not triples:
            return {}
        if self.use_plane:
            return batched_global_exchange(
                self.simulator, triples, tag=tag, max_rounds=max_rounds,
                collect=collect, charge_only=self.charge_only,
            )
        # The comparison engines reproduce their historical behaviour —
        # harvesting unconditionally, exactly as they did before the round
        # engine learnt to elide it — so speedup benchmarks measure the real
        # previous hot path; ``collect`` is intentionally not forwarded.
        if isinstance(triples, TokenPlane):
            triples = list(triples.iter_triples(self.simulator))
        if self.engine == "batch-reference":
            return _reference_batched_global_exchange(
                self.simulator, triples, tag=tag, max_rounds=max_rounds
            )
        from repro.core.transport import GlobalTransfer, throttled_global_exchange

        transfers = [
            GlobalTransfer(sender=triple[0], receiver=triple[1], payload=triple[2], tag=tag)
            for triple in triples
        ]
        return throttled_global_exchange(
            self.simulator, transfers, max_rounds=max_rounds
        )

    def resilient_exchange(
        self,
        triples: Union[TokenPlane, Sequence[Tuple]],
        tag: Optional[str] = None,
        *,
        max_attempts: int = 16,
        backoff_cap: int = 8,
        collect: bool = True,
    ) -> ResilientExchangeResult:
        """Self-healing variant of :meth:`exchange` (plane engine only).

        Routes the workload through
        :func:`resilient_batched_global_exchange`: ack-tracked delivery with
        crashed-endpoint masking, per-attempt re-planning against the degraded
        budget, and bounded exponential backoff in idle rounds.  The
        comparison engines have no fault-aware transport, so requesting this
        on them is an error rather than a silent downgrade.
        """
        if not self.use_plane:
            raise ValueError(
                f"resilient exchange requires engine='batch', not {self.engine!r}"
            )
        if isinstance(triples, TokenPlane):
            if not len(triples):
                return ResilientExchangeResult({}, [], 0, 0)
        elif not triples:
            return ResilientExchangeResult({}, [], 0, 0)
        return resilient_batched_global_exchange(
            self.simulator,
            triples,
            tag=tag,
            max_attempts=max_attempts,
            backoff_cap=backoff_cap,
            collect=collect,
            charge_only=self.charge_only,
        )
