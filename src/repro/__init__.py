"""Reproduction of *Universally Optimal Information Dissemination and Shortest
Paths in the HYBRID Distributed Model* (Chang, Hecht, Leitersdorf, Schneider;
PODC 2024, arXiv:2311.09548).

The package is organised as follows:

``repro.graphs``
    Graph substrate: weighted graph generators for the families studied in the
    paper (paths, cycles, d-dimensional grids, trees, expanders, ...) and
    structural helpers (balls, hop distances, power graphs, diameters).

``repro.simulator``
    A synchronous, round-based simulator of the HYBRID(lambda, gamma) model and
    its marginal cases (LOCAL, CONGEST, NCC, NCC_0, Congested Clique), with
    per-node global-capacity enforcement and HYBRID_0 identifier-knowledge
    tracking.

``repro.core``
    The paper's contributions: the neighborhood-quality parameter ``NQ_k``,
    NQ_k-clustering, virtual-tree overlays, universally optimal
    k-dissemination / k-aggregation / (k,l)-routing, skeleton graphs, spanners,
    existentially optimal SSSP and k-SSP, universally optimal (k,l)-SP and APSP
    variants, cut approximation, the Minor-Aggregation model and the
    Eulerian-orientation oracle.

``repro.baselines``
    The existentially optimal prior algorithms the paper compares against and
    centralized reference solvers used for correctness checking.

``repro.lowerbounds``
    The node-communication problem and the universal Omega(NQ_k) lower bounds.

``repro.analysis``
    Theoretical predictions (closed forms for NQ_k on special families) and the
    experiment harness used by the benchmarks to regenerate the paper's tables
    and figures.
"""

from repro.graphs import GraphSpec, generate_graph
from repro.simulator import (
    BatchAlgorithm,
    HybridSimulator,
    ModelConfig,
    RoundMetrics,
    batched_global_exchange,
)
from repro.core.neighborhood_quality import (
    neighborhood_quality,
    neighborhood_quality_per_node,
    DistributedNQComputation,
)
from repro.core.dissemination import KDissemination
from repro.core.aggregation import KAggregation
from repro.core.routing import KLRouting
from repro.core.sssp import ApproxSSSP
from repro.core.ksp import KSourceShortestPaths
from repro.core.shortest_paths import (
    UnweightedApproxAPSP,
    SpannerAPSP,
    SkeletonAPSP,
    KLShortestPaths,
)

__version__ = "1.0.0"

__all__ = [
    "GraphSpec",
    "generate_graph",
    "HybridSimulator",
    "ModelConfig",
    "RoundMetrics",
    "BatchAlgorithm",
    "batched_global_exchange",
    "neighborhood_quality",
    "neighborhood_quality_per_node",
    "DistributedNQComputation",
    "KDissemination",
    "KAggregation",
    "KLRouting",
    "ApproxSSSP",
    "KSourceShortestPaths",
    "UnweightedApproxAPSP",
    "SpannerAPSP",
    "SkeletonAPSP",
    "KLShortestPaths",
    "__version__",
]
