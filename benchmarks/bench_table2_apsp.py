"""Table 2 reproduction: all-pairs shortest paths.

Paper claim (Table 2): APSP is approximable in eO(NQ_n) rounds — (1+eps) on
unweighted graphs (Theorem 6), O(log n / log log n) deterministically on
weighted graphs (Theorem 7 / Corollary 2.3) — and with constant stretch in
eO(n^{1/4} NQ_n^{1/2}) rounds (Theorem 8), versus the existential eTheta(sqrt n)
of [AHK+20, KS20, AG21a]; the universal lower bound is eOmega(NQ_n).

The benchmark runs all three of our APSP algorithms plus the [KS20]-style
sqrt(n)-skeleton baseline on the graph grid, records rounds and *measured*
stretch (against Dijkstra/BFS ground truth), and asserts (a) every stretch
bound holds, (b) the universal lower bound never exceeds the measured rounds,
and (c) on low-NQ graphs NQ_n is polynomially below sqrt(n) (the gap the
universal algorithms exploit).
"""

from __future__ import annotations

import math
import os
import random
import time

import pytest

from repro.analysis.experiments import run_table2_apsp
from repro.baselines.centralized import exact_apsp, max_stretch_of_table
from repro.baselines.naive import SqrtNSkeletonAPSP
from repro.core.neighborhood_quality import neighborhood_quality
from repro.core.shortest_paths import UnweightedApproxAPSP
from repro.graphs.generators import GraphSpec, generate_graph
from repro.graphs.index import get_index
from repro.graphs.weighted import assign_random_weights
from repro.simulator.config import ModelConfig
from repro.simulator.network import HybridSimulator

SPECS = [
    GraphSpec.of("grid", side=7, dim=2),
    GraphSpec.of("erdos_renyi", n=64, p=0.1, seed=5),
    GraphSpec.of("path", n=64),
    GraphSpec.of("star", n=64),
]


def _apsp_rows():
    rows = []
    for spec in SPECS:
        rows.extend(run_table2_apsp(spec, epsilon=0.5, alpha=1, seed=3))
    return rows


def test_table2_apsp_universal_algorithms(benchmark, save_table):
    rows = benchmark.pedantic(_apsp_rows, rounds=1, iterations=1)
    save_table("table2_apsp", rows, "Table 2 - APSP (Theorems 6, 7, 8)")
    for row in rows:
        assert row["stretch measured"] <= row["stretch bound"] + 1e-6
        assert row["rounds (total)"] >= row["universal LB"]
    # The NQ_n << sqrt(n) gap exists on the star / random-graph rows.
    low_nq_rows = [row for row in rows if row["graph"].startswith("star")]
    assert all(row["NQ_n"] <= math.sqrt(row["n"]) / 2 for row in low_nq_rows)


def _baseline_row():
    spec = GraphSpec.of("grid", side=5, dim=2)
    graph = assign_random_weights(generate_graph(spec), max_weight=9, seed=4)
    sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=4)
    table = SqrtNSkeletonAPSP(sim, seed=4).run()
    stretch = max_stretch_of_table(exact_apsp(graph), table.estimates)
    return {
        "graph": spec.label(),
        "algorithm": "[KS20]-style sqrt(n)-skeleton (baseline)",
        "n": graph.number_of_nodes(),
        "rounds (total)": sim.metrics.total_rounds,
        "stretch measured": round(stretch, 3),
    }


def test_table2_existential_baseline(benchmark, save_table):
    row = benchmark.pedantic(_baseline_row, rounds=1, iterations=1)
    save_table("table2_baseline", [row], "Table 2 - existential baseline")
    assert row["stretch measured"] == pytest.approx(1.0, abs=1e-6)
    assert row["rounds (total)"] >= math.sqrt(row["n"])


# ----------------------------------------------------------------------
# Large tier (scheduled CI, BENCH_SCALE=large): Theorem 6 at n >= 2000
# ----------------------------------------------------------------------
LARGE_SPECS = [
    GraphSpec.of("path", n=2000),
    GraphSpec.of("star", n=2000),
    GraphSpec.of("grid", side=45, dim=2),
]
LARGE_STRETCH_SAMPLES = 400


def run_table2_large_point(spec: GraphSpec, *, seed: int = 3) -> dict:
    """One n >= 2000 Table 2 point: Theorem 6 on the batch engine.

    The full exact-APSP ground truth is Theta(n^2) and dominates everything
    at this scale, so the measured stretch is taken over a fixed random
    sample of pairs, with per-pair hop truth read off dense GraphIndex rows.
    """
    graph = generate_graph(spec)
    n = graph.number_of_nodes()
    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
    start = time.perf_counter()
    table = UnweightedApproxAPSP(sim, epsilon=0.5).run()
    elapsed = time.perf_counter() - start

    index = get_index(graph)
    rng = random.Random(seed)
    nodes = list(graph.nodes)
    worst = 1.0
    for _ in range(LARGE_STRETCH_SAMPLES):
        u, v = rng.choice(nodes), rng.choice(nodes)
        truth = index.hop_distance_row(u)[index.index_of[v]]
        estimate = table.estimate(u, v)
        if truth < 0:  # unreachable sentinel — only on a disconnected spec
            assert estimate == math.inf
            continue
        assert estimate >= truth - 1e-9
        if truth > 0:
            worst = max(worst, estimate / truth)
    return {
        "graph": spec.label(),
        "algorithm": "Thm 6: (1+eps) unweighted APSP (batch engine)",
        "n": n,
        "NQ_n": neighborhood_quality(graph, n),
        "rounds (total)": sim.metrics.total_rounds,
        "stretch bound": round(table.stretch_bound, 3),
        "stretch measured (sampled)": round(worst, 3),
        "seconds": round(elapsed, 2),
        "capacity violations": sim.metrics.capacity_violations,
    }


def test_table2_apsp_large_tier(save_table):
    """The n >= 2000 Table 2 points; runs in the scheduled CI job."""
    if os.environ.get("BENCH_SCALE") != "large":
        pytest.skip("large tier runs in the scheduled CI job (BENCH_SCALE=large)")
    rows = [run_table2_large_point(spec) for spec in LARGE_SPECS]
    save_table(
        "table2_apsp_large", rows, "Table 2 - APSP at n >= 2000 (batch engine)"
    )
    for row in rows:
        assert row["stretch measured (sampled)"] <= row["stretch bound"] + 1e-6
        assert row["capacity violations"] == 0
        assert row["rounds (total)"] > 0
