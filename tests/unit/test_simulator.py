"""Unit tests for the HYBRID(lambda, gamma) simulator: configuration, message
accounting, knowledge tracking, capacity enforcement and the round lifecycle."""

import random

import pytest

from repro.graphs.generators import path_graph, grid_graph, complete_graph
from repro.graphs.weighted import assign_uniform_weights
from repro.simulator.config import IdentifierRegime, ModelConfig, log2_ceil, word_bits
from repro.simulator.errors import (
    CapacityExceededError,
    LocalBandwidthExceededError,
    NotANeighborError,
    RoundLifecycleError,
    UnknownIdentifierError,
    UnknownNodeError,
)
from repro.simulator.knowledge import KnowledgeTracker
from repro.simulator.messages import GLOBAL_MODE, LOCAL_MODE, Message, payload_words
from repro.simulator.metrics import ChargeRecord, RoundMetrics
from repro.simulator.network import HybridSimulator, node_sort_key


class TestModelConfig:
    def test_log2_ceil(self):
        assert log2_ceil(1) == 1
        assert log2_ceil(2) == 1
        assert log2_ceil(3) == 2
        assert log2_ceil(1024) == 10

    def test_hybrid_defaults(self):
        config = ModelConfig.hybrid()
        assert config.local_mode_enabled()
        assert config.global_mode_enabled()
        assert not config.is_hybrid0()

    def test_hybrid0_is_sparse(self):
        assert ModelConfig.hybrid0().identifier_regime is IdentifierRegime.SPARSE

    def test_local_model_has_no_global_mode(self):
        config = ModelConfig.local()
        assert config.local_mode_enabled()
        assert not config.global_mode_enabled()

    def test_congest_has_finite_local_bandwidth(self):
        config = ModelConfig.congest()
        assert config.local_bits_per_edge is not None
        assert not config.global_mode_enabled()

    def test_ncc_has_no_local_mode(self):
        config = ModelConfig.ncc()
        assert not config.local_mode_enabled()
        assert config.global_mode_enabled()

    def test_congested_clique_budget_scales_with_n(self):
        config = ModelConfig.congested_clique(50)
        assert config.resolve_global_message_budget(50) == 49

    def test_default_budget_scales_logarithmically(self):
        config = ModelConfig.hybrid()
        assert config.resolve_global_message_budget(1024) == 10
        assert config.resolve_global_word_budget(1024) == 10 * config.words_per_message

    def test_parameterized_constructor(self):
        config = ModelConfig.hybrid_parameterized(64, 5, sparse_ids=True)
        assert config.local_bits_per_edge == 64
        assert config.resolve_global_message_budget(100) == 5
        assert config.is_hybrid0()


class TestPayloadWords:
    def test_primitives_cost_one_word(self):
        assert payload_words(7) == 1
        assert payload_words(3.14) == 1
        assert payload_words(None) == 1
        assert payload_words(True) == 1

    def test_big_int_costs_more(self):
        assert payload_words(1 << 200) >= 4

    def test_string_cost_scales_with_length(self):
        assert payload_words("abc") == 1
        assert payload_words("a" * 64) == 8

    def test_container_costs_sum_plus_framing(self):
        assert payload_words((1, 2, 3)) == 4
        assert payload_words({"a": 1}) == 3

    def test_message_words_include_tag(self):
        message = Message(0, 1, (1, 2), "global", tag="x")
        assert message.words == payload_words((1, 2)) + 1


class TestKnowledgeTracker:
    def test_initial_knowledge_is_self_and_neighbors(self):
        tracker = KnowledgeTracker([10, 20, 30])
        tracker.initialize_node(10, [20])
        assert tracker.knows(10, 10)
        assert tracker.knows(10, 20)
        assert not tracker.knows(10, 30)

    def test_learning_new_ids(self):
        tracker = KnowledgeTracker([10, 20, 30])
        tracker.initialize_node(10, [])
        tracker.learn(10, [30])
        assert tracker.knows(10, 30)

    def test_learning_nonexistent_id_is_ignored(self):
        tracker = KnowledgeTracker([10, 20])
        tracker.initialize_node(10, [])
        tracker.learn(10, [999])
        assert not tracker.knows(10, 999)

    def test_all_known_initialization(self):
        tracker = KnowledgeTracker([1, 2, 3])
        tracker.initialize_all_known()
        assert tracker.knows(1, 3)
        assert tracker.knowledge_count(2) == 3

    def test_unknown_node_raises(self):
        tracker = KnowledgeTracker([1])
        with pytest.raises(UnknownNodeError):
            tracker.knows(99, 1)


class TestPackedKnowledge:
    """The packed sorted-array layer behind ``learn_known_array``."""

    @staticmethod
    def _np():
        from repro.simulator import _accel

        if _accel.np is None:
            pytest.skip("accelerator gate off; packed layer degrades to sets")
        return _accel.np

    def _tracker(self, n=64):
        tracker = KnowledgeTracker(range(n))
        tracker.initialize_node(0, [1])
        return tracker

    def test_packed_ids_are_visible_through_every_probe(self):
        np = self._np()
        tracker = self._tracker()
        tracker.learn_known_array(0, np.array([7, 11, 30], dtype=np.int64))
        assert tracker.knows(0, 11)
        assert not tracker.knows(0, 12)
        assert tracker.known_ids(0) == {0, 1, 7, 11, 30}
        view = tracker.known_ids_view(0)
        assert 30 in view and 1 in view and 29 not in view
        assert tracker.knowledge_count(0) == 5

    def test_geometric_merge_keeps_membership_exact(self):
        np = self._np()
        tracker = self._tracker(4096)
        rng = __import__("random").Random(13)
        expected = {0, 1}
        for _ in range(40):
            chunk = sorted(rng.sample(range(2, 4096), rng.randrange(1, 9)))
            tracker.learn_known_array(0, np.array(chunk, dtype=np.int64))
            expected.update(chunk)
        assert tracker.known_ids(0) == expected
        # Two levels at most, each sorted, recent < snapshot geometrically.
        levels = tracker._packed_levels(0)
        assert 1 <= len(levels) <= 2
        for level in levels:
            assert list(level) == sorted(level.tolist())

    def test_packed_known_mask_matches_scalar_probes(self):
        np = self._np()
        tracker = self._tracker(128)
        tracker.learn_known_array(0, np.array([5, 9, 90], dtype=np.int64))
        tracker.learn_known_array(0, np.array([3, 127], dtype=np.int64))
        targets = np.arange(128, dtype=np.int64)
        mask = tracker.packed_known_mask(np, 0, targets)
        packed = {3, 5, 9, 90, 127}
        assert set(targets[mask].tolist()) == packed
        # The mask covers the packed layer only: personal ids stay False.
        assert not mask[0] and not mask[1]

    def test_degrades_to_the_set_layer_without_numpy(self, monkeypatch):
        from repro.simulator import _accel

        monkeypatch.setattr(_accel, "np", None)
        tracker = self._tracker()
        tracker.learn_known_array(0, [4, 8])
        assert tracker.knows(0, 8)
        assert tracker.known_ids(0) == {0, 1, 4, 8}
        assert not tracker._packed_levels(0)

    def test_packed_probes_survive_gate_switch_off(self, monkeypatch):
        np = self._np()
        from repro.simulator import _accel

        tracker = self._tracker()
        tracker.learn_known_array(0, np.array([21, 42], dtype=np.int64))
        monkeypatch.setattr(_accel, "np", None)
        # bisect probes work on the stored arrays regardless of the gate.
        assert tracker.knows(0, 42)
        assert 21 in tracker.known_ids_view(0)
        assert tracker.known_ids(0) == {0, 1, 21, 42}


class TestRoundMetrics:
    def test_charge_accumulates(self):
        metrics = RoundMetrics()
        metrics.charge(5, "setup")
        metrics.charge(3, "more setup", "Lemma X")
        assert metrics.charged_rounds == 8
        assert metrics.total_rounds == 8
        assert metrics.charges[1] == ChargeRecord(3, "more setup", "Lemma X")

    def test_zero_charge_is_noop(self):
        metrics = RoundMetrics()
        metrics.charge(0, "nothing")
        assert metrics.charges == []

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            RoundMetrics().charge(-1, "bad")

    def test_merge(self):
        a = RoundMetrics(measured_rounds=2, global_messages=3)
        b = RoundMetrics(measured_rounds=1, local_messages=4)
        b.charge(7, "x")
        merged = a.merge(b)
        assert merged.measured_rounds == 3
        assert merged.global_messages == 3
        assert merged.local_messages == 4
        assert merged.charged_rounds == 7

    def test_summary_keys(self):
        summary = RoundMetrics().summary()
        assert "total_rounds" in summary
        assert "capacity_violations" in summary


class TestSimulatorBasics:
    def test_rejects_empty_graph(self):
        import networkx as nx

        with pytest.raises(ValueError):
            HybridSimulator(nx.Graph())

    def test_dense_ids_are_node_labels(self):
        sim = HybridSimulator(path_graph(5), ModelConfig.hybrid())
        assert sim.id_of(3) == 3
        assert sim.node_of_id(3) == 3

    def test_sparse_ids_are_distinct_and_resolvable(self):
        sim = HybridSimulator(path_graph(6), ModelConfig.hybrid0(), seed=1)
        ids = [sim.id_of(v) for v in sim.nodes]
        assert len(set(ids)) == 6
        for v in sim.nodes:
            assert sim.node_of_id(sim.id_of(v)) == v

    def test_sparse_id_universe_is_capped_for_huge_graphs(self):
        """n^3 overflows a C ssize_t past n ~ 2*10^6; the capped universe
        keeps random.sample viable and every id inside int64 (packed
        knowledge arrays), while staying bit-identical below the cap."""
        from repro.simulator.network import _ID_UNIVERSE_CAP, _identifier_universe

        assert _identifier_universe(6) == 6**3
        assert _identifier_universe(1) == 8
        assert _identifier_universe(10_000_000) == _ID_UNIVERSE_CAP
        assert _ID_UNIVERSE_CAP < 2**63  # ssize_t and int64 safe
        # The draw that used to raise OverflowError at n=10^7:
        drawn = random.Random(0).sample(range(_identifier_universe(10_000_000)), 5)
        assert len(set(drawn)) == 5

    def test_neighbors(self):
        sim = HybridSimulator(path_graph(5))
        assert sim.neighbors(0) == [1]
        assert sim.neighbors(2) == [1, 3]

    def test_unknown_node_raises(self):
        sim = HybridSimulator(path_graph(3))
        with pytest.raises(UnknownNodeError):
            sim.neighbors(17)

    def test_edge_weight_accessor(self):
        graph = assign_uniform_weights(path_graph(3), 4)
        sim = HybridSimulator(graph)
        assert sim.edge_weight(0, 1) == 4

    def test_inbox_before_first_round_raises(self):
        sim = HybridSimulator(path_graph(3))
        with pytest.raises(RoundLifecycleError):
            sim.local_inbox(0)


class TestLocalMode:
    def test_local_send_delivers_next_round(self):
        sim = HybridSimulator(path_graph(3))
        sim.local_send(0, 1, "hello")
        sim.advance_round()
        inbox = sim.local_inbox(1)
        assert len(inbox) == 1
        assert inbox[0].payload == "hello"
        assert sim.local_inbox(0) == []

    def test_local_send_requires_edge(self):
        sim = HybridSimulator(path_graph(3))
        with pytest.raises(NotANeighborError):
            sim.local_send(0, 2, "nope")

    def test_local_broadcast_reaches_all_neighbors(self):
        sim = HybridSimulator(grid_graph(3, 2))
        sim.local_broadcast(4, "x")  # the grid centre has 4 neighbors
        sim.advance_round()
        receivers = [v for v in sim.nodes if sim.local_inbox(v)]
        assert len(receivers) == 4

    def test_local_mode_disabled_in_ncc(self):
        sim = HybridSimulator(path_graph(3), ModelConfig.ncc())
        with pytest.raises(LocalBandwidthExceededError):
            sim.local_send(0, 1, "x")

    def test_congest_local_bandwidth_enforced(self):
        sim = HybridSimulator(path_graph(3), ModelConfig.congest())
        sim.local_send(0, 1, 5)  # one word is fine
        with pytest.raises(LocalBandwidthExceededError):
            sim.local_send(0, 1, tuple(range(50)))

    def test_local_messages_unbounded_in_hybrid(self):
        sim = HybridSimulator(path_graph(3), ModelConfig.hybrid())
        sim.local_send(0, 1, tuple(range(1000)))  # arbitrarily large is legal
        sim.advance_round()
        assert sim.local_inbox(1)[0].payload == tuple(range(1000))


class TestGlobalMode:
    def test_global_send_any_pair_in_hybrid(self):
        sim = HybridSimulator(path_graph(6), ModelConfig.hybrid())
        sim.global_send(0, 5, "far away")
        sim.advance_round()
        assert sim.global_inbox(5)[0].payload == "far away"

    def test_global_send_unknown_identifier_in_hybrid0(self):
        sim = HybridSimulator(path_graph(6), ModelConfig.hybrid0(), seed=0)
        far_id = sim.id_of(5)
        with pytest.raises(UnknownIdentifierError):
            sim.global_send(0, far_id, "nope")

    def test_global_send_to_neighbor_allowed_in_hybrid0(self):
        sim = HybridSimulator(path_graph(6), ModelConfig.hybrid0(), seed=0)
        sim.global_send(0, sim.id_of(1), "ok")
        sim.advance_round()
        assert sim.global_inbox(1)[0].payload == "ok"

    def test_receiving_teaches_sender_id(self):
        sim = HybridSimulator(path_graph(6), ModelConfig.hybrid0(), seed=0)
        # 0 -> 1 is allowed (neighbors); afterwards 1 knows 0's id (already did),
        # but 1 -> 3 is not; teach 1 about 3 explicitly, then 3 learns 1's id by
        # receiving and can reply.
        sim.declare_learned_ids(1, [sim.id_of(3)])
        sim.global_send(1, sim.id_of(3), "ping")
        sim.advance_round()
        assert sim.knows_id(3, sim.id_of(1))
        sim.global_send(3, sim.id_of(1), "pong")
        sim.advance_round()
        assert sim.global_inbox(1)[0].payload == "pong"

    def test_global_mode_disabled_in_local_model(self):
        sim = HybridSimulator(path_graph(4), ModelConfig.local())
        with pytest.raises(CapacityExceededError):
            sim.global_send(0, 2, "x")

    def test_send_capacity_enforced(self):
        sim = HybridSimulator(path_graph(40), ModelConfig.hybrid())
        budget = sim.global_budget_words()
        for target in range(1, budget + 2):
            sim.global_send(0, target, 1)
        with pytest.raises(CapacityExceededError):
            sim.advance_round()
        assert sim.metrics.capacity_violations >= 1

    def test_send_within_capacity_passes(self):
        sim = HybridSimulator(path_graph(40), ModelConfig.hybrid())
        budget = sim.global_budget_words()
        for target in range(1, budget + 1):
            sim.global_send(0, target, 1)
        sim.advance_round()
        assert sim.metrics.capacity_violations == 0

    def test_receive_overload_recorded_but_not_fatal_by_default(self):
        sim = HybridSimulator(complete_graph(40), ModelConfig.hybrid())
        budget = sim.global_budget_words()
        for sender in range(1, budget + 5):
            sim.global_send(sender, 0, 1)
        sim.advance_round()
        assert sim.metrics.capacity_violations >= 1
        assert len(sim.global_inbox(0)) == budget + 4

    def test_receive_overload_raises_when_enforced(self):
        sim = HybridSimulator(
            complete_graph(40), ModelConfig.hybrid(), enforce_receive_capacity=True
        )
        budget = sim.global_budget_words()
        for sender in range(1, budget + 5):
            sim.global_send(sender, 0, 1)
        with pytest.raises(CapacityExceededError):
            sim.advance_round()

    def test_capacity_multiplier_relaxes_budget(self):
        tight = HybridSimulator(path_graph(40), ModelConfig.hybrid())
        loose = HybridSimulator(path_graph(40), ModelConfig.hybrid(), capacity_multiplier=3)
        assert loose.global_budget_words() == 3 * tight.global_budget_words()


class TestNodeOrdering:
    """Regression: integer nodes must order numerically, not as strings
    (0, 1, 10, 11, ..., 2 was the old ``key=str`` ordering)."""

    def test_nodes_are_numerically_sorted(self):
        sim = HybridSimulator(path_graph(12))
        assert sim.nodes == list(range(12))

    def test_neighbors_are_numerically_sorted(self):
        sim = HybridSimulator(path_graph(12))
        assert sim.neighbors(10) == [9, 11]
        assert sim.neighbors(2) == [1, 3]

    def test_node_sort_key_orders_integers_numerically(self):
        values = [0, 1, 10, 11, 2, 20, 3]
        assert sorted(values, key=node_sort_key) == sorted(values)

    def test_node_sort_key_handles_mixed_types(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_edge(0, "a")
        graph.add_edge("a", 10)
        graph.add_edge(10, 2)
        sim = HybridSimulator(graph)
        # Numbers first (numerically), then strings.
        assert sim.nodes == [0, 2, 10, "a"]


class TestBatchSending:
    def test_local_send_batch_delivers_prebucketed(self):
        sim = HybridSimulator(path_graph(4))
        queued = sim.local_send_batch([(0, 1, "a"), (2, 1, "b"), (2, 3, "c")])
        assert queued == 3
        sim.advance_round()
        inbox = sim.per_node_inbox(LOCAL_MODE)
        assert [record[1] for record in inbox[1]] == ["a", "b"]
        assert [record[1] for record in inbox[3]] == ["c"]
        assert 0 not in inbox

    def test_global_send_batch_by_node_and_by_id(self):
        sim = HybridSimulator(path_graph(6), ModelConfig.hybrid())
        sim.global_send_batch([(0, 5, "x")])
        sim.global_send_batch([(1, sim.id_of(4), "y")], by_id=True)
        sim.advance_round()
        assert sim.global_inbox(5)[0].payload == "x"
        assert sim.global_inbox(4)[0].payload == "y"

    def test_batch_records_carry_sender_tag_and_words(self):
        sim = HybridSimulator(path_graph(4), ModelConfig.hybrid())
        sim.global_send_batch([(0, 2, (1, 2, 3))], tag="t")
        sim.advance_round()
        ((sender, payload, tag, words),) = sim.per_node_inbox(GLOBAL_MODE)[2]
        assert sender == 0
        assert payload == (1, 2, 3)
        assert tag == "t"
        assert words == payload_words((1, 2, 3)) + payload_words("t")

    def test_precomputed_words_are_trusted(self):
        sim = HybridSimulator(path_graph(4), ModelConfig.hybrid())
        sim.global_send_batch([(0, 2, "payload", 7)])
        sim.advance_round()
        assert sim.per_node_inbox(GLOBAL_MODE)[2][0][3] == 7
        assert sim.metrics.global_words == 7

    def test_batch_send_validates_edges(self):
        sim = HybridSimulator(path_graph(4))
        with pytest.raises(NotANeighborError):
            sim.local_send_batch([(0, 1, "ok"), (0, 3, "not adjacent")])

    def test_batch_send_validates_nodes(self):
        sim = HybridSimulator(path_graph(4), ModelConfig.hybrid())
        with pytest.raises(UnknownNodeError):
            sim.global_send_batch([(0, 99, "nope")])

    def test_batch_knowledge_enforced_in_hybrid0(self):
        sim = HybridSimulator(path_graph(6), ModelConfig.hybrid0(), seed=0)
        with pytest.raises(UnknownIdentifierError):
            sim.global_send_batch([(0, 5, "unknown target")])

    def test_batch_capacity_accounting_matches_per_message(self):
        sim = HybridSimulator(path_graph(40), ModelConfig.hybrid())
        budget = sim.global_budget_words()
        sim.global_send_batch((0, target, 1) for target in range(1, budget + 2))
        with pytest.raises(CapacityExceededError):
            sim.advance_round()
        assert sim.metrics.capacity_violations >= 1

    def test_aborted_batch_keeps_metrics_in_sync(self):
        # A validation error mid-batch leaves earlier records queued; the
        # aggregate accounting must cover exactly those records.
        sim = HybridSimulator(path_graph(4), ModelConfig.hybrid())
        with pytest.raises(UnknownNodeError):
            sim.local_send_batch([(0, 1, "ok"), (1, 2, "ok2"), (0, 99, "bad")])
        with pytest.raises(UnknownNodeError):
            sim.global_send_batch([(0, 3, "ok"), (99, 0, "bad")])
        sim.advance_round()
        assert sim.metrics.local_messages == 2
        assert sim.metrics.global_messages == 1
        delivered_local = sum(len(r) for r in sim.per_node_inbox(LOCAL_MODE).values())
        delivered_global = sum(len(r) for r in sim.per_node_inbox(GLOBAL_MODE).values())
        assert delivered_local == 2
        assert delivered_global == 1
        assert sim.metrics.local_words == sum(
            rec[3] for recs in sim.per_node_inbox(LOCAL_MODE).values() for rec in recs
        )
        assert sim.metrics.global_words == sum(
            rec[3] for recs in sim.per_node_inbox(GLOBAL_MODE).values() for rec in recs
        )

    def test_exchange_does_not_harvest_foreign_traffic(self):
        from repro.simulator.engine import batched_global_exchange

        sim = HybridSimulator(path_graph(6), ModelConfig.hybrid())
        sim.global_send_batch([(0, 4, "foreign")], tag="other")
        delivered = batched_global_exchange(sim, [(1, 2, "mine")], tag="x")
        assert delivered == {2: ["mine"]}
        # The foreign message was still delivered in that round, just not
        # folded into the exchange's result.
        assert [r[1] for r in sim.per_node_inbox(GLOBAL_MODE)[4]] == ["foreign"]

    def test_per_node_inbox_requires_delivered_round(self):
        sim = HybridSimulator(path_graph(3))
        with pytest.raises(RoundLifecycleError):
            sim.per_node_inbox()

    def test_per_node_inbox_rejects_unknown_mode(self):
        sim = HybridSimulator(path_graph(3))
        sim.advance_round()
        with pytest.raises(ValueError):
            sim.per_node_inbox("carrier-pigeon")

    def test_legacy_wrappers_and_batch_share_accounting(self):
        batch_sim = HybridSimulator(path_graph(8), ModelConfig.hybrid())
        legacy_sim = HybridSimulator(path_graph(8), ModelConfig.hybrid())
        triples = [(0, 5, ("m", 1)), (1, 5, ("m", 2)), (2, 3, ("m", 3))]
        batch_sim.global_send_batch(triples, tag="t")
        for sender, receiver, payload in triples:
            legacy_sim.global_send_to_node(sender, receiver, payload, tag="t")
        batch_sim.advance_round()
        legacy_sim.advance_round()
        assert batch_sim.metrics.summary() == legacy_sim.metrics.summary()
        for node in batch_sim.nodes:
            assert batch_sim.global_inbox(node) == legacy_sim.global_inbox(node)


class TestRoundLifecycle:
    def test_round_counter_increments(self):
        sim = HybridSimulator(path_graph(3))
        assert sim.round == 0
        sim.advance_round()
        sim.advance_round()
        assert sim.round == 2
        assert sim.metrics.measured_rounds == 2

    def test_advance_rounds_bulk(self):
        sim = HybridSimulator(path_graph(3))
        sim.advance_rounds(5)
        assert sim.round == 5
        with pytest.raises(ValueError):
            sim.advance_rounds(-1)

    def test_inboxes_are_per_round(self):
        sim = HybridSimulator(path_graph(3))
        sim.local_send(0, 1, "first")
        sim.advance_round()
        assert len(sim.local_inbox(1)) == 1
        sim.advance_round()
        assert sim.local_inbox(1) == []

    def test_charge_rounds_recorded(self):
        sim = HybridSimulator(path_graph(3))
        sim.charge_rounds(11, "analysis", "Lemma 4.1")
        assert sim.metrics.charged_rounds == 11
        assert sim.metrics.total_rounds == 11

    def test_message_accounting(self):
        sim = HybridSimulator(path_graph(4), ModelConfig.hybrid())
        sim.local_send(0, 1, "a")
        sim.global_send(0, 3, "b")
        sim.advance_round()
        assert sim.metrics.local_messages == 1
        assert sim.metrics.global_messages == 1
        assert sim.metrics.global_words >= 1
