"""Sharded multi-core round scheduling with a deterministic merge.

The single-process two-tier scheduler (:func:`repro.simulator.engine.
plan_token_rounds`) is exact but serial: every congested exchange plans its
whole token plane on one core.  This module partitions a plane into
**node-disjoint** position buckets, plans each bucket independently — on a
persistent ``multiprocessing`` pool over shared-memory NumPy columns when
available, sequentially in-process otherwise — and merges the per-bucket
schedules back into one schedule that is **token-for-token identical** to the
single-process reference (and hence to ``_reference_shard_transfers``, the
repo's standing oracle).

Why per-bucket planning is exact
--------------------------------
The greedy-FIFO admits a token iff its sender's sent-counter and its
receiver's received-counter still fit the budget.  Sent- and received-
counters are *separate* per node, so the conflict structure is the bipartite
graph with one vertex per sender role and one per receiver role and one edge
per distinct (sender, receiver) pair.  Partitioning tokens by the connected
components of that graph (union-find over the distinct pairs) means no two
buckets ever touch the same counter: the greedy's admission decision for a
token depends only on tokens of its own component.

Rounds also stay aligned across buckets: at the start of every round all
counters are zero, so the first pending token of every component is always
admitted — **provided no token is individually oversized** (``words +
tag_words > budget``).  Each component therefore admits at least one token
per round until it drains, which makes "bucket-local round r" equal "global
round r restricted to the bucket".  Because the greedy preserves submission
order, every global shard lists its tokens in ascending plane position — so
merging the buckets' round-``r`` shards in ascending position order
reconstructs the global shard exactly.  Workloads containing *any*
individually-oversized token fall back to the single-process planner (the
forced-oversized branch is a global condition that can couple components);
the oversized property tests pass through that fallback unchanged.

Determinism
-----------
Every choice is a pure function of the plane and the worker count: components
are keyed by their smallest bipartite vertex, ordered by (descending token
count, ascending first position), and assigned to the least-loaded bucket
(ties to the lowest bucket index) via a heap.  Worker processes only compute
— the merge order is fixed by plane positions, so scheduling is bit-identical
whether buckets ran in-process, on 2 workers, or on 7.

Process execution
-----------------
The process path lays the (senders, receivers, words-with-tag, positions)
columns into one shared-memory ``int64`` block per plan call; workers attach
read-only, plan their bucket with the engine's own ``_plan_rounds_numpy``,
and return position arrays.  The pool is persistent (created lazily, reused
across plan calls, ``close()``/context-manager to dispose) and any pool
failure degrades permanently to in-process planning for the planner's
lifetime — never to a different schedule.  Under ``REPRO_NO_NUMPY=1`` (or a
monkeypatched ``_accel.np``) the whole path is sequential pure Python over
the same partition, preserving identity on the fallback backend.

``REPRO_SHARD_WORKERS=k`` (k >= 2) installs a planner process-wide for every
exchange via :func:`planner_from_env` (resolved lazily by
:func:`repro.simulator.engine.installed_planner`).
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.simulator import _accel
from repro.simulator.config import resolve_shard_workers

__all__ = [
    "ShardedPlanner",
    "planner_from_env",
    "token_components",
    "assign_buckets",
    "merge_round_schedules",
]

#: Pool dispatch failures that demote a planner to in-process execution.
_POOL_ERRORS = (OSError, ImportError, ValueError)


# ----------------------------------------------------------------------
# Partition: bipartite components -> deterministic buckets
# ----------------------------------------------------------------------
def token_components(senders, receivers) -> List[int]:
    """Component label per token (a plain list; labels are root vertex keys).

    Union-find over the distinct (sender, receiver) pairs of the bipartite
    role graph: sender node ``s`` is vertex ``2 * s``, receiver node ``r`` is
    vertex ``2 * r + 1`` (a node's sender and receiver counters are
    independent, so the two roles must not be conflated).  Tokens sharing a
    component share at least one greedy counter transitively; tokens in
    different components provably never interact.
    """
    np = _accel.np
    if np is not None and isinstance(senders, np.ndarray):
        span = int(max(int(senders.max()), int(receivers.max()))) + 1
        pair_keys = np.unique(senders * span + receivers)
        pair_list = [(int(key) // span, int(key) % span) for key in pair_keys]
        sender_column = senders.tolist()
    else:
        pair_list = sorted(set(zip(senders, receivers)))
        sender_column = senders
    parent: Dict[int, int] = {}

    def find(vertex: int) -> int:
        root = vertex
        while parent[root] != root:
            root = parent[root]
        while parent[vertex] != root:  # path compression
            parent[vertex], vertex = root, parent[vertex]
        return root

    for s, r in pair_list:
        a, b = 2 * s, 2 * r + 1
        if a not in parent:
            parent[a] = a
        if b not in parent:
            parent[b] = b
        ra, rb = find(a), find(b)
        if ra != rb:
            if ra < rb:  # smallest vertex key wins: deterministic labels
                parent[rb] = ra
            else:
                parent[ra] = rb
    return [find(2 * s) for s in sender_column]


def assign_buckets(labels: Sequence[int], workers: int) -> List[List[int]]:
    """Group component labels into at most ``workers`` position buckets.

    Components are ordered by (descending size, ascending first position) and
    greedily placed on the least-loaded bucket, ties to the lowest bucket
    index — the classic LPT balance, made deterministic.  Each bucket's
    positions are returned in ascending order (the order the per-bucket
    planners and the merge both rely on).  Buckets that received nothing are
    dropped.
    """
    positions_by_label: Dict[int, List[int]] = {}
    for position, label in enumerate(labels):
        positions_by_label.setdefault(label, []).append(position)
    components = sorted(
        positions_by_label.values(), key=lambda ps: (-len(ps), ps[0])
    )
    heap = [(0, index) for index in range(max(1, workers))]
    buckets: List[List[int]] = [[] for _ in range(max(1, workers))]
    for positions in components:
        load, index = heapq.heappop(heap)
        buckets[index].extend(positions)
        heapq.heappush(heap, (load + len(positions), index))
    return [sorted(bucket) for bucket in buckets if bucket]


def merge_round_schedules(schedules: List[List[Any]]) -> List[Any]:
    """Merge per-bucket schedules round-by-round in ascending position order.

    ``schedules[b][r]`` holds bucket ``b``'s global plane positions admitted
    in round ``r``.  Because buckets are node-disjoint and gap-free (every
    bucket admits at least one token per round until it drains), the global
    round-``r`` shard is exactly the ascending-position union of the buckets'
    round-``r`` shards.
    """
    np = _accel.np
    depth = max((len(schedule) for schedule in schedules), default=0)
    merged: List[Any] = []
    for r in range(depth):
        chunks = [
            schedule[r]
            for schedule in schedules
            if r < len(schedule) and len(schedule[r])
        ]
        if np is not None and chunks and isinstance(chunks[0], np.ndarray):
            shard = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
            merged.append(np.sort(shard))
        else:
            flat: List[int] = []
            for chunk in chunks:
                flat.extend(chunk)
            flat.sort()
            merged.append(flat)
    return merged


# ----------------------------------------------------------------------
# Worker-side bucket planning (top level: picklable by reference)
# ----------------------------------------------------------------------
def _plan_bucket_worker(
    shm_name: str, total: int, offset: int, length: int, budget: int
):
    """Plan one bucket from the shared-memory columns (runs in a worker).

    The block layout is ``[senders | receivers | wt | positions...]`` with
    the three column segments ``total`` long and this bucket's positions at
    ``[offset, offset + length)``.  Returned shards are position arrays
    copied out of the (parent-owned, parent-unlinked) block.
    """
    from multiprocessing import shared_memory

    from repro.simulator.engine import _plan_rounds_numpy

    np = _accel.np
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        try:
            # The parent owns the block and unlinks it; stop this process's
            # resource tracker from double-unlinking (and warning) at exit.
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
        block = np.ndarray((shm.size // 8,), dtype=np.int64, buffer=shm.buf)
        positions = block[offset : offset + length].copy()
        senders = block[0:total][positions]
        receivers = block[total : 2 * total][positions]
        wt = block[2 * total : 3 * total][positions]
        del block
        shards = _plan_rounds_numpy(np, senders, receivers, wt, budget)
        return [positions[shard] for shard in shards]
    finally:
        shm.close()


# ----------------------------------------------------------------------
# The planner
# ----------------------------------------------------------------------
class ShardedPlanner:
    """Plan token planes over node-disjoint buckets, optionally on a pool.

    Drop-in for :func:`~repro.simulator.engine.plan_token_rounds` — install
    process-wide with :func:`repro.simulator.engine.install_planner` (or
    ``REPRO_SHARD_WORKERS``) or call :meth:`plan` directly.  Schedules are
    bit-identical to the single-process planner for every worker count (see
    the module docstring for the argument and
    ``tests/properties/test_sharded_engine.py`` for the pins).

    Parameters
    ----------
    workers: bucket / pool size; ``None`` reads ``REPRO_SHARD_WORKERS``.
    use_processes: ``True`` forces the pool for every sharded plan, ``False``
        keeps all planning in-process (the property grids use this), and
        ``None`` (default) uses the pool only for workloads of at least
        ``process_min_tokens`` tokens — below that the fork/IPC overhead
        dwarfs the planning itself.
    min_tokens: workloads smaller than this skip partitioning entirely and
        delegate to the single-process planner.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        use_processes: Optional[bool] = None,
        min_tokens: int = 256,
        process_min_tokens: int = 4096,
    ) -> None:
        self.workers = resolve_shard_workers() if workers is None else int(workers)
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        self.use_processes = use_processes
        self.min_tokens = int(min_tokens)
        self.process_min_tokens = int(process_min_tokens)
        self._pool: Optional[Any] = None
        self._pool_broken = False
        #: Introspection counters: plans that went through the partition
        #: machinery, and the subset executed on the process pool.
        self.sharded_plans = 0
        self.process_plans = 0

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Dispose of the worker pool (idempotent; the planner stays usable
        in-process afterwards)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()

    def __enter__(self) -> "ShardedPlanner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- planning ------------------------------------------------------
    def plan(self, plane, budget: int, tag_words: int = 0) -> List[Any]:
        """Schedule ``plane`` into per-round position shards (see
        :func:`~repro.simulator.engine.plan_token_rounds` for the contract)."""
        from repro.simulator.engine import plan_token_rounds

        m = len(plane)
        if m == 0:
            return []
        if self.workers <= 1 or m < self.min_tokens:
            return plan_token_rounds(plane, budget, tag_words)
        np = _accel.np
        senders = plane.senders
        if np is not None and isinstance(senders, np.ndarray):
            return self._plan_numpy(np, plane, budget, tag_words)
        return self._plan_python(plane, budget, tag_words)

    def _plan_numpy(self, np, plane, budget: int, tag_words: int) -> List[Any]:
        from repro.simulator.engine import _plan_rounds_numpy, plan_token_rounds

        senders = plane.senders
        receivers = plane.receivers
        wt = plane.words + tag_words if tag_words else plane.words
        if int(wt.max()) > budget:
            # Oversized tokens couple components through the global
            # forced-oversized branch: fall back rather than approximate.
            return plan_token_rounds(plane, budget, tag_words)
        sent = np.bincount(senders, weights=wt, minlength=1)
        if sent.max() <= budget:
            recv = np.bincount(receivers, weights=wt, minlength=1)
            if recv.max() <= budget:
                # Uncongested: one shard, nothing to shard or merge.
                return [np.arange(senders.size, dtype=np.int64)]
        labels = token_components(senders, receivers)
        buckets = assign_buckets(labels, self.workers)
        if len(buckets) <= 1:
            # One connected component: sharding cannot help; stay serial.
            return plan_token_rounds(plane, budget, tag_words)
        self.sharded_plans += 1
        position_arrays = [
            np.asarray(bucket, dtype=np.int64) for bucket in buckets
        ]
        schedules = None
        if self._want_processes(senders.size):
            try:
                schedules = self._plan_buckets_pool(
                    np, senders, receivers, wt, position_arrays, budget
                )
            except _POOL_ERRORS:
                self._pool_broken = True
                self.close()
        if schedules is None:
            schedules = [
                [
                    positions[shard]
                    for shard in _plan_rounds_numpy(
                        np,
                        senders[positions],
                        receivers[positions],
                        wt[positions],
                        budget,
                    )
                ]
                for positions in position_arrays
            ]
        return merge_round_schedules(schedules)

    def _plan_python(self, plane, budget: int, tag_words: int) -> List[Any]:
        from repro.simulator.engine import _plan_rounds_python, plan_token_rounds

        senders = plane.senders
        receivers = plane.receivers
        words = plane.words
        if hasattr(senders, "tolist"):  # numpy columns, gate forced off
            senders = senders.tolist()
            receivers = receivers.tolist()
            words = words.tolist()
        wt = [w + tag_words for w in words] if tag_words else words
        if max(wt) > budget:
            return plan_token_rounds(plane, budget, tag_words)
        labels = token_components(senders, receivers)
        buckets = assign_buckets(labels, self.workers)
        if len(buckets) <= 1:
            return plan_token_rounds(plane, budget, tag_words)
        self.sharded_plans += 1
        schedules = []
        for positions in buckets:
            shards = _plan_rounds_python(
                [senders[p] for p in positions],
                [receivers[p] for p in positions],
                [wt[p] for p in positions],
                budget,
            )
            schedules.append(
                [[positions[i] for i in shard] for shard in shards]
            )
        return merge_round_schedules(schedules)

    # -- process pool --------------------------------------------------
    def _want_processes(self, total: int) -> bool:
        if self._pool_broken or self.use_processes is False:
            return False
        if self.use_processes:
            return True
        return total >= self.process_min_tokens

    def _ensure_pool(self):
        pool = self._pool
        if pool is None:
            import multiprocessing

            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            pool = self._pool = context.Pool(processes=self.workers)
        return pool

    def _plan_buckets_pool(
        self, np, senders, receivers, wt, position_arrays, budget: int
    ) -> List[List[Any]]:
        from multiprocessing import shared_memory

        pool = self._ensure_pool()
        total = int(senders.size)
        positions_total = sum(int(p.size) for p in position_arrays)
        shm = shared_memory.SharedMemory(
            create=True, size=8 * (3 * total + positions_total)
        )
        try:
            block = np.ndarray(
                (3 * total + positions_total,), dtype=np.int64, buffer=shm.buf
            )
            block[0:total] = senders
            block[total : 2 * total] = receivers
            block[2 * total : 3 * total] = wt.astype(np.int64, copy=False)
            offset = 3 * total
            tasks = []
            for positions in position_arrays:
                block[offset : offset + positions.size] = positions
                tasks.append(
                    pool.apply_async(
                        _plan_bucket_worker,
                        (shm.name, total, offset, int(positions.size), budget),
                    )
                )
                offset += positions.size
            schedules = [task.get() for task in tasks]
            del block
        finally:
            shm.close()
            try:
                shm.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
        self.process_plans += 1
        return schedules


def planner_from_env() -> Optional[ShardedPlanner]:
    """The process-wide default planner: a :class:`ShardedPlanner` when
    ``REPRO_SHARD_WORKERS`` asks for 2+ workers, else ``None`` (single-process
    planning).  Called lazily by
    :func:`repro.simulator.engine.installed_planner` on the first exchange."""
    workers = resolve_shard_workers()
    if workers <= 1:
        return None
    return ShardedPlanner(workers=workers)
