"""Bit-identity grid for the sharded *delivery* engine.

PR 9 proved the sharded planner schedule-identical; this grid proves the
same for the delivery side (:class:`~repro.simulator.sharding.ShardedDelivery`):
fault filtering of token planes, grouped capacity counters, the round
capacity sweep, and sparse-regime identifier learning must be **bit-identical**
to the serial path for every worker count {1, 2, 4, 7}, on both array
backends, in all three operating modes — fault-free, a crash + link-failure +
drop schedule, and charge-only.  Pinned quantities per the issue contract:
``RoundMetrics.diff`` (empty), the full metrics summary, capacity-violation
counts (and the strict-mode error text), and the complete per-node
``KnowledgeTracker`` state.

The in-process legs exercise the dispatch seam (the serial twin *is* the
whole-array path); the ``use_processes=True`` legs push every stage through
the real shared-memory pool with thresholds forced to 1, and a degrade test
proves a broken pool falls back permanently without changing a single bit.
"""

from __future__ import annotations

import random

import pytest

from repro.core.dissemination import KDissemination
from repro.graphs.generators import erdos_renyi_graph, path_graph
from repro.simulator import _accel
from repro.simulator import engine as engine_module
from repro.simulator.config import ModelConfig
from repro.simulator.engine import TokenPlane, batched_global_exchange, install_planner
from repro.simulator.errors import CapacityExceededError
from repro.simulator.faults import CrashEvent, FaultSchedule, LinkFailure
from repro.simulator.network import HybridSimulator
from repro.simulator.sharding import ShardedPlanner, WorkerPoolService

SEEDS = [0, 1, 2]
WORKER_COUNTS = [1, 2, 4, 7]
MODES = ["fault-free", "faulted", "charge-only"]

requires_numpy = pytest.mark.skipif(
    _accel.np is None, reason="NumPy not available; vectorised leg is inactive"
)


@pytest.fixture(params=["numpy", "python"])
def backend(request, monkeypatch):
    """Run the test body under both array backends."""
    if request.param == "python":
        monkeypatch.setattr(_accel, "np", None)
    elif _accel.np is None:
        pytest.skip("NumPy not available; vectorised leg is inactive")
    return request.param


@pytest.fixture
def planner_state(monkeypatch):
    """Snapshot/restore the engine's process-wide planner hook."""
    monkeypatch.setattr(
        engine_module, "_active_planner", engine_module._active_planner
    )
    monkeypatch.setattr(
        engine_module, "_env_planner_resolved", engine_module._env_planner_resolved
    )
    return engine_module


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def _congested_triples(rng, n, budget):
    """Node-disjoint congested groups (multi-component, multi-round), with
    shards large enough that the vectorised plane path engages."""
    groups = max(2, min(4, n // 8))
    nodes = list(range(n))
    rng.shuffle(nodes)
    size = n // groups
    triples = []
    for g in range(groups):
        members = nodes[g * size : (g + 1) * size]
        hot = members[0]
        count = 2 * budget + rng.randrange(5, 20)
        for i in range(count):
            sender = rng.choice(members)
            receiver = hot if i % 4 else rng.choice(members)
            triples.append((sender, receiver, ("m", g, i)))
    return triples


def _exchange_schedule(seed):
    """Crashes (one transient, one permanent), a failed link on a real path
    edge, and both drop rates — every fault-filter branch fires."""
    return FaultSchedule(
        seed=seed,
        crashes=(
            CrashEvent(node=1, crash_round=1, recover_round=3),
            CrashEvent(node=4, crash_round=2),
        ),
        link_failures=(LinkFailure(2, 3, start_round=1, end_round=5),),
        global_drop_rate=0.15,
        local_drop_rate=0.1,
    )


def _dissemination_schedule(seed):
    """Transient crash only: the algorithm must still terminate."""
    return FaultSchedule(
        seed=seed,
        crashes=(CrashEvent(node=1, crash_round=2, recover_round=4),),
    )


def _sim_kwargs(mode, seed, schedule_factory):
    kwargs = {}
    if mode == "faulted":
        kwargs["fault_schedule"] = schedule_factory(seed)
    elif mode == "charge-only":
        kwargs["charge_only"] = True
    return kwargs


def _knowledge_state(sim):
    return {
        identifier: sorted(sim.knowledge.known_ids(identifier))
        for identifier in sim.all_ids()
    }


def _force_pool(planner):
    """Drop every delivery threshold so all four stages hit the real pool."""
    engine = planner.delivery()
    engine.min_tokens = 1
    engine.process_min_tokens = 1
    engine.sweep_min_nodes = 1
    return engine


# ----------------------------------------------------------------------
# Scenario drivers (return everything the grid pins)
# ----------------------------------------------------------------------
def _run_exchange(planner, seed, mode):
    """Congested multi-round exchange, non-strict: metrics summary pinned."""
    install_planner(planner)
    graph = erdos_renyi_graph(36, 0.15, seed=seed)
    rng = random.Random(f"delivery-{seed}-{mode}")
    sim = HybridSimulator(
        graph,
        ModelConfig(strict=False),
        seed=seed,
        **_sim_kwargs(mode, seed, _exchange_schedule),
    )
    budget = sim.global_budget_words()
    triples = _congested_triples(rng, 36, min(budget, 57))
    batched_global_exchange(sim, triples, tag="sd", collect=False)
    return sim.metrics


def _run_dissemination(planner, seed, mode):
    """HYBRID_0 dissemination: metrics + full knowledge state pinned."""
    install_planner(planner)
    graph = erdos_renyi_graph(30, 0.18, seed=seed + 40)
    rng = random.Random(f"kdiss-{seed}-{mode}")
    tokens = {}
    for index in range(16):
        tokens.setdefault(rng.randrange(30), []).append(("tok", index))
    sim = HybridSimulator(
        graph,
        ModelConfig.hybrid0(),
        seed=seed,
        **_sim_kwargs(mode, seed, _dissemination_schedule),
    )
    result = KDissemination(sim, tokens).run()
    return result.metrics, _knowledge_state(sim)


def _run_overload(planner, seed, mode, *, strict=False):
    """Planes sent over budget on purpose: the sweep must report identical
    violation counts (non-strict) or the identical first offender (strict)."""
    install_planner(planner)
    graph = path_graph(24)
    rng = random.Random(f"overload-{seed}-{mode}")
    sim = HybridSimulator(
        graph,
        ModelConfig.hybrid(strict=strict),
        seed=seed,
        **_sim_kwargs(mode, seed, _exchange_schedule),
    )
    budget = sim.global_budget_words()
    count = 36 * max(1, budget // 2)
    senders = [rng.randrange(24) for _ in range(count)]
    receivers = [rng.choice([5, 11]) for _ in range(count)]
    words = [rng.choice([1, 2, 3]) for _ in range(count)]
    plane = TokenPlane(
        senders, receivers, words, [("p", i) for i in range(count)]
    )
    outcome = None
    try:
        sim.global_send_plane(plane, tag="ov")
        sim.advance_round()
    except CapacityExceededError as exc:
        outcome = str(exc)
    return sim.metrics, outcome


# ----------------------------------------------------------------------
# The grid: workers x modes x backends, in-process delivery twin
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("seed", SEEDS)
def test_exchange_delivery_is_bit_identical(seed, workers, mode, backend, planner_state):
    baseline = _run_exchange(None, seed, mode)
    with ShardedPlanner(workers, use_processes=False, min_tokens=1) as planner:
        sharded = _run_exchange(planner, seed, mode)
    assert sharded.diff(baseline) == {}
    assert sharded.summary() == baseline.summary()
    if mode == "faulted":
        assert baseline.summary()["dropped_messages"] > 0


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("seed", SEEDS[:2])
def test_dissemination_delivery_is_bit_identical(
    seed, workers, mode, backend, planner_state
):
    base_metrics, base_known = _run_dissemination(None, seed, mode)
    with ShardedPlanner(workers, use_processes=False, min_tokens=1) as planner:
        shard_metrics, shard_known = _run_dissemination(planner, seed, mode)
    assert shard_metrics.diff(base_metrics) == {}
    assert shard_known == base_known


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("workers", [1, 4, 7])
@pytest.mark.parametrize("seed", SEEDS[:2])
def test_capacity_sweep_is_bit_identical(seed, workers, mode, backend, planner_state):
    base_metrics, base_error = _run_overload(None, seed, mode)
    with ShardedPlanner(workers, use_processes=False, min_tokens=1) as planner:
        shard_metrics, shard_error = _run_overload(planner, seed, mode)
    assert shard_metrics.diff(base_metrics) == {}
    assert shard_error == base_error is None
    assert base_metrics.capacity_violations > 0


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_strict_sweep_reports_the_identical_first_offender(
    seed, backend, planner_state
):
    base_metrics, base_error = _run_overload(None, seed, "fault-free", strict=True)
    with ShardedPlanner(4, use_processes=False, min_tokens=1) as planner:
        shard_metrics, shard_error = _run_overload(
            planner, seed, "fault-free", strict=True
        )
    assert base_error is not None and "global words in round" in base_error
    assert shard_error == base_error
    assert shard_metrics.diff(base_metrics) == {}


# ----------------------------------------------------------------------
# Real process pool: every stage through shared memory
# ----------------------------------------------------------------------
@requires_numpy
@pytest.mark.parametrize("mode", MODES)
def test_pool_exchange_delivery_is_bit_identical(mode, planner_state):
    seed = 1
    baseline = _run_exchange(None, seed, mode)
    with ShardedPlanner(2, use_processes=True, min_tokens=1) as planner:
        engine = _force_pool(planner)
        sharded = _run_exchange(planner, seed, mode)
        if planner._pool_broken:
            pytest.skip("multiprocessing pool unavailable in this environment")
    assert engine.pool_stages > 0  # the pool path genuinely ran
    assert sharded.diff(baseline) == {}
    assert sharded.summary() == baseline.summary()


@requires_numpy
def test_pool_dissemination_and_sweep_are_bit_identical(planner_state):
    seed = 0
    base_metrics, base_known = _run_dissemination(None, seed, "faulted")
    sweep_base, _ = _run_overload(None, seed, "fault-free")
    with ShardedPlanner(2, use_processes=True, min_tokens=1) as planner:
        engine = _force_pool(planner)
        shard_metrics, shard_known = _run_dissemination(planner, seed, "faulted")
        sweep_shard, sweep_error = _run_overload(planner, seed, "fault-free")
        if planner._pool_broken:
            pytest.skip("multiprocessing pool unavailable in this environment")
    assert engine.pool_stages > 0
    assert shard_metrics.diff(base_metrics) == {}
    assert shard_known == base_known
    assert sweep_shard.diff(sweep_base) == {}
    assert sweep_error is None


@requires_numpy
def test_pool_failure_degrades_delivery_without_changing_bits(
    monkeypatch, planner_state
):
    """A pool that dies mid-stage marks the planner broken permanently; the
    run completes on the in-process twin with identical results."""
    seed = 2
    baseline = _run_exchange(None, seed, "faulted")
    monkeypatch.setattr(
        WorkerPoolService,
        "apply_async",
        lambda self, func, args: (_ for _ in ()).throw(OSError("pool died")),
    )
    with ShardedPlanner(2, use_processes=True, min_tokens=1) as planner:
        engine = _force_pool(planner)
        sharded = _run_exchange(planner, seed, "faulted")
        assert planner._pool_broken
        again = _run_exchange(planner, seed, "faulted")
    assert engine.pool_stages == 0
    assert sharded.diff(baseline) == {}
    assert again.diff(baseline) == {}
