"""Universally optimal multi-message unicast: ``(k, l)-routing`` (Theorem 3).

Problem (Definition 1.3): a set ``S`` of ``k`` source nodes each hold an
individual message for each of ``l`` target nodes ``T``; every target must end
up knowing the ``|S|`` messages addressed to it.

Theorem 3 solves the problem w.h.p. in

* ``eO(NQ_k)`` rounds for ``l <= NQ_k`` with arbitrary sources and random targets,
* ``eO(NQ_l)`` rounds for ``k <= NQ_l`` with random sources and arbitrary targets,
* ``eO(max(NQ_k, NQ_l))`` rounds for ``k * l <= NQ_k * n`` with random sources
  and random targets,

using adaptive helper sets (Lemma 5.2) and relaying through pseudo-random
intermediate nodes chosen by a kappa-wise independent hash (Lemma 5.3), so that
senders and receivers never need to learn each other's helper sets
(Algorithm 2).

What is physically simulated: every hop of every message that crosses the
global network (source-helpers -> intermediates, target-helpers' requests ->
intermediates, intermediates' replies -> target-helpers), token-sharded over
the batch messaging engine (:mod:`repro.simulator.engine`) so the per-node
budget is respected.  What is charged: the helper-set construction
(Lemma 5.2), the hash-seed broadcast and the broadcast of ``S``'s identifiers
(Theorem 1), and the local-mode distribution/collection of messages between
sources/targets and their helpers (bounded by the weak diameter ``eO(NQ_k)``).

The implementation is a :class:`~repro.simulator.engine.BatchAlgorithm`;
``engine="legacy"`` reroutes every hop through the per-message transport with
identical round counts.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from collections import defaultdict
from typing import Any, Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.core.clustering import Clustering, distributed_nq_clustering
from repro.core.hashing import PairwiseHash
from repro.core.helper_sets import HelperAssignment, compute_adaptive_helper_sets
from repro.core.neighborhood_quality import neighborhood_quality
from repro.simulator.config import log2_ceil
from repro.simulator.engine import BatchAlgorithm, GlobalTriple
from repro.simulator.metrics import RoundMetrics
from repro.simulator.network import HybridSimulator

Node = Hashable

__all__ = ["RoutingScenario", "RoutingResult", "KLRouting"]


class RoutingScenario(enum.Enum):
    """The four source/target sampling scenarios of Definition 1.3."""

    ARBITRARY_SOURCES_RANDOM_TARGETS = "arbitrary-sources/random-targets"
    RANDOM_SOURCES_ARBITRARY_TARGETS = "random-sources/arbitrary-targets"
    RANDOM_SOURCES_RANDOM_TARGETS = "random-sources/random-targets"
    ARBITRARY_SOURCES_ARBITRARY_TARGETS = "arbitrary-sources/arbitrary-targets"


@dataclasses.dataclass
class RoutingResult:
    """Outcome of a (k, l)-routing run."""

    delivered: Dict[Node, Dict[Node, Any]]
    k: int
    l: int
    nq: int
    scenario: RoutingScenario
    intermediate_load: Dict[Node, int]
    metrics: RoundMetrics

    def all_delivered(self, messages: Dict[Tuple[Node, Node], Any]) -> bool:
        """Whether every (source, target) message arrived intact."""
        for (source, target), payload in messages.items():
            if self.delivered.get(target, {}).get(source) != payload:
                return False
        return True


class KLRouting(BatchAlgorithm):
    """Theorem 3: (k, l)-routing in ``eO(NQ_k)`` rounds (scenario-dependent).

    Parameters
    ----------
    simulator: the network.
    messages: mapping ``(source, target) -> payload`` (each payload O(log n) bits).
    scenario: which of the four Definition 1.3 scenarios the caller set up;
        determines whether source helpers are the sources themselves
        (case 1: ``H_s = {s}``) or sampled adaptively (case 3).
    seed: randomness for helper sampling and the hash family.
    engine: ``"batch"`` (default) or ``"legacy"`` message path.
    """

    def __init__(
        self,
        simulator: HybridSimulator,
        messages: Dict[Tuple[Node, Node], Any],
        *,
        scenario: RoutingScenario = RoutingScenario.ARBITRARY_SOURCES_RANDOM_TARGETS,
        seed: Optional[int] = None,
        nq: Optional[int] = None,
        engine: str = "batch",
    ) -> None:
        super().__init__(simulator, engine=engine)
        if not messages:
            raise ValueError("messages must be non-empty")
        self.messages = dict(messages)
        self.scenario = scenario
        self.seed = seed
        self._nq_hint = nq
        node_set = set(simulator.nodes)
        for source, target in self.messages:
            if source not in node_set or target not in node_set:
                raise KeyError(f"message endpoints ({source!r}, {target!r}) not in the network")
        # Phase state.
        self._log_n = log2_ceil(max(simulator.n, 2))
        self.sources: List[Node] = []
        self.targets: List[Node] = []
        self.k = 0
        self.l = 0
        self.nq = 0
        self._source_helpers: Optional[HelperAssignment] = None
        self._target_helpers: Optional[HelperAssignment] = None
        self._pair_hash: Optional[PairwiseHash] = None
        self._node_by_position: List[Node] = []
        self._intermediate_store: Dict[Node, Dict[Tuple[int, int], Any]] = defaultdict(dict)
        self._intermediate_load: Dict[Node, int] = defaultdict(int)
        self._reply_triples: List[GlobalTriple] = []
        self._delivered: Dict[Node, Dict[Node, Any]] = {}

    # ------------------------------------------------------------------
    def phases(self):
        return (
            ("parameters", self._phase_parameters),
            ("scatter", self._phase_scatter),
            ("request-reply", self._phase_request_reply),
            ("collect", self._phase_collect),
        )

    def _phase_parameters(self) -> None:
        """NQ_k, clustering, helper sets and the hash family (mostly charged)."""
        sim = self.simulator
        log_n = self._log_n

        self.sources = sorted({s for s, _ in self.messages}, key=sim.id_of)
        self.targets = sorted({t for _, t in self.messages}, key=sim.id_of)
        self.k = len(self.sources)
        self.l = len(self.targets)

        nq = self._nq_hint
        if nq is None:
            # Served by the frontier-based analytics engine and memoised per
            # (graph, k): repeated routing instances on the same graph — e.g.
            # the (k, l)-SP reversal of Theorem 5 — recompute nothing.
            nq = neighborhood_quality(sim.graph, max(self.k, 1))
        self.nq = max(1, nq)
        sim.charge_rounds(self.nq, "distributed computation of NQ_k", "Lemma 3.3")

        clustering = distributed_nq_clustering(sim, max(self.k, 1), nq=self.nq)

        # Helper sets for targets (always) and for sources (case 3 only).
        self._target_helpers = compute_adaptive_helper_sets(
            sim, self.targets, max(self.k, 1), nq=self.nq, clustering=clustering, seed=self.seed
        )
        if self.scenario is RoutingScenario.RANDOM_SOURCES_RANDOM_TARGETS:
            self._source_helpers = compute_adaptive_helper_sets(
                sim,
                self.sources,
                max(self.k, 1),
                nq=self.nq,
                clustering=clustering,
                seed=None if self.seed is None else self.seed + 1,
            )
        else:
            # Case (1)/(2): the sources send their own messages, H_s = {s}.
            self._source_helpers = HelperAssignment(
                helpers={s: [s] for s in self.sources}, load={v: 0 for v in sim.nodes}
            )

        # Hash family (Lemma 5.3); the seed (Theta(NQ_k log n) words) is
        # broadcast with Theorem 1, charged.
        universe = max(sim.all_ids()) + 1
        independence = max(2, self.nq * log_n)
        self._pair_hash = PairwiseHash(
            universe=universe,
            buckets=sim.n,
            independence=independence,
            seed=self.seed,
        )
        sim.charge_rounds(
            self.nq * log_n,
            "broadcasting the kappa-wise independent hash seed",
            "Lemma 5.3 via Theorem 1",
        )
        sim.charge_rounds(
            self.nq * log_n,
            "broadcasting the set of source identifiers",
            "Theorem 3 via Theorem 1",
        )
        self._node_by_position = sim.nodes  # deterministic order for bucket -> node

    def _phase_scatter(self) -> None:
        """Phase A (local, charged): sources hand their labelled messages to
        their helpers; Phase B (global, measured): helpers push the messages to
        the hashed intermediate nodes."""
        sim = self.simulator
        pair_hash = self._pair_hash
        node_by_position = self._node_by_position

        sim.charge_rounds(
            4 * self.nq * self._log_n,
            "sources distribute messages to their helpers over the local mode",
            "Theorem 3 / Lemma 5.2 property (2)",
        )
        helper_outbox: Dict[Node, List[Tuple[int, int, Any]]] = defaultdict(list)
        for (source, target), payload in sorted(
            self.messages.items(), key=lambda item: (sim.id_of(item[0][0]), sim.id_of(item[0][1]))
        ):
            helpers = self._source_helpers.helpers_of(source)
            chosen = helpers[hash((sim.id_of(source), sim.id_of(target))) % len(helpers)]
            helper_outbox[chosen].append((sim.id_of(source), sim.id_of(target), payload))

        to_intermediate: List[GlobalTriple] = []
        for helper, items in sorted(helper_outbox.items(), key=lambda kv: sim.id_of(kv[0])):
            for source_id, target_id, payload in items:
                bucket = pair_hash(source_id, target_id)
                intermediate = node_by_position[bucket % len(node_by_position)]
                to_intermediate.append(
                    (helper, intermediate, (source_id, target_id, payload))
                )
        self.exchange(to_intermediate, "rt-st")
        for _, intermediate, item in to_intermediate:
            source_id, target_id, payload = item
            self._intermediate_store[intermediate][(source_id, target_id)] = payload
            self._intermediate_load[intermediate] += 1

    def _phase_request_reply(self) -> None:
        """Phase C: targets hand requests to their helpers (local, charged), the
        helpers query the intermediates (global, measured), the intermediates
        reply (global, measured)."""
        sim = self.simulator
        pair_hash = self._pair_hash
        node_by_position = self._node_by_position

        sim.charge_rounds(
            4 * self.nq * self._log_n,
            "targets distribute requests to their helpers over the local mode",
            "Theorem 3 / Lemma 5.2 property (2)",
        )
        request_triples: List[GlobalTriple] = []
        for target in self.targets:
            helpers = self._target_helpers.helpers_of(target)
            for position, source in enumerate(self.sources):
                if (source, target) not in self.messages:
                    continue
                helper = helpers[position % len(helpers)]
                source_id = sim.id_of(source)
                target_id = sim.id_of(target)
                bucket = pair_hash(source_id, target_id)
                intermediate = node_by_position[bucket % len(node_by_position)]
                request_triples.append(
                    (helper, intermediate, (source_id, target_id, sim.id_of(helper)))
                )
        self.exchange(request_triples, "rt-rq")

        reply_triples: List[GlobalTriple] = []
        for _, intermediate, request in request_triples:
            source_id, target_id, helper_id = request
            payload = self._intermediate_store[intermediate].get((source_id, target_id))
            reply_triples.append(
                (intermediate, sim.node_of_id(helper_id), (source_id, target_id, payload))
            )
        self.exchange(reply_triples, "rt-rp")
        self._reply_triples = reply_triples

    def _phase_collect(self) -> None:
        """Phase D: targets collect from their helpers over the local mode
        (charged)."""
        sim = self.simulator
        sim.charge_rounds(
            4 * self.nq * self._log_n,
            "targets collect delivered messages from their helpers",
            "Theorem 3 / Lemma 5.2 property (2)",
        )
        delivered: Dict[Node, Dict[Node, Any]] = {t: {} for t in self.targets}
        for _, _, reply in self._reply_triples:
            source_id, target_id, payload = reply
            delivered[sim.node_of_id(target_id)][sim.node_of_id(source_id)] = payload
        self._delivered = delivered
        for node in sim.nodes:
            self._intermediate_load.setdefault(node, 0)

    def finish(self) -> RoutingResult:
        return RoutingResult(
            delivered=self._delivered,
            k=self.k,
            l=self.l,
            nq=self.nq,
            scenario=self.scenario,
            intermediate_load=dict(self._intermediate_load),
            metrics=self.simulator.metrics,
        )
