"""Setup shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` and ``python setup.py develop`` work on environments whose
setuptools/pip combination predates full PEP 660 editable-install support
(such as offline machines without the ``wheel`` package).
"""

from setuptools import setup

setup()
