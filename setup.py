"""Setup shim.

This file exists so that ``pip install -e .`` and ``python setup.py develop``
work on environments whose setuptools/pip combination predates full PEP 660
editable-install support (such as offline machines without the ``wheel``
package).

The ``[fast]`` extra pulls in NumPy, the optional accelerator behind the
vectorised round engine (:mod:`repro.simulator._accel`).  Without it every
code path still works — the engine falls back to pure-Python array sweeps
with bit-for-bit identical schedules — so the hard dependency surface stays
``networkx`` only.
"""

from setuptools import find_packages, setup

setup(
    name="repro-hybrid-nq",
    version="0.5.0",
    description=(
        "Reproduction of conf_podc_ChangHLS24: universally optimal information "
        "dissemination in the HYBRID model, with a batch round-engine simulator"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["networkx"],
    extras_require={
        "fast": ["numpy"],
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
)
