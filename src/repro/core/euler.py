"""The Eulerian-orientation oracle ``O_Euler`` (Section 8.2).

Definition 8.4: given an Eulerian graph ``H`` (every node has even degree),
possibly containing a few *virtual* nodes, orient every edge so that each
node's in-degree equals its out-degree.

The paper implements the oracle in eO(1) HYBRID_0 rounds via network
decompositions, forest decompositions (Barenboim-Elkin) and per-cycle
orientation (Lemmas 8.5, 8.6).  We provide

* :func:`eulerian_orientation` — the orientation itself (Hierholzer's
  algorithm per connected component, which orients each Eulerian circuit
  consistently and therefore balances every node exactly), supporting
  multigraphs so that the "split into degree-2 nodes" reduction of Lemma 8.5 is
  unnecessary;
* :func:`forests_decomposition` — the Barenboim-Elkin style forest
  decomposition used by Lemma 8.5 to reduce to bounded arboricity (exposed
  because it is independently useful and independently tested);
* :class:`EulerOracle` — the oracle wrapper that charges the eO(1) rounds of
  Lemma 8.6 per invocation.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, Hashable, List, Optional, Set, Tuple

import networkx as nx

from repro.simulator.config import log2_ceil
from repro.simulator.network import HybridSimulator

Node = Hashable

__all__ = [
    "is_eulerian",
    "eulerian_orientation",
    "verify_orientation_balanced",
    "forests_decomposition",
    "EulerOracle",
]


def is_eulerian(graph: nx.Graph) -> bool:
    """Every node has even degree (the paper's Eulerian condition)."""
    return all(degree % 2 == 0 for _, degree in graph.degree())


def eulerian_orientation(graph: nx.Graph) -> List[Tuple[Node, Node]]:
    """Orient the edges of an Eulerian (multi)graph so in-degree == out-degree.

    Returns a list of directed edges ``(u, v)`` meaning the edge is oriented
    from ``u`` to ``v``; parallel edges appear once per multiplicity.  Raises
    ``ValueError`` if some node has odd degree.
    """
    if not is_eulerian(graph):
        raise ValueError("graph has a node of odd degree; no Eulerian orientation exists")

    # Adjacency with explicit edge multiplicity (supports Graph and MultiGraph).
    adjacency: Dict[Node, Dict[Node, int]] = defaultdict(lambda: defaultdict(int))
    if graph.is_multigraph():
        for u, v, _ in graph.edges(keys=True):
            adjacency[u][v] += 1
            adjacency[v][u] += 1
    else:
        for u, v in graph.edges:
            adjacency[u][v] += 1
            adjacency[v][u] += 1

    remaining_degree = {node: sum(adjacency[node].values()) for node in graph.nodes}
    oriented: List[Tuple[Node, Node]] = []

    for start in sorted(graph.nodes, key=str):
        while remaining_degree.get(start, 0) > 0:
            # Hierholzer: walk an Eulerian circuit from `start`, orienting edges
            # in walk direction; every circuit contributes +1 in / +1 out to
            # each visited node, keeping the balance exact.
            circuit: List[Node] = []
            stack = [start]
            while stack:
                node = stack[-1]
                if remaining_degree[node] > 0:
                    neighbor = next(
                        candidate
                        for candidate in sorted(adjacency[node], key=str)
                        if adjacency[node][candidate] > 0
                    )
                    adjacency[node][neighbor] -= 1
                    adjacency[neighbor][node] -= 1
                    remaining_degree[node] -= 1
                    remaining_degree[neighbor] -= 1
                    stack.append(neighbor)
                else:
                    circuit.append(stack.pop())
            circuit.reverse()
            for u, v in zip(circuit, circuit[1:]):
                oriented.append((u, v))
    return oriented


def verify_orientation_balanced(
    graph: nx.Graph, orientation: List[Tuple[Node, Node]]
) -> bool:
    """Check that the orientation covers every edge exactly once and balances
    every node's in- and out-degree."""
    expected = graph.number_of_edges()
    if len(orientation) != expected:
        return False
    out_degree: Dict[Node, int] = defaultdict(int)
    in_degree: Dict[Node, int] = defaultdict(int)
    used = nx.MultiGraph()
    used.add_nodes_from(graph.nodes)
    for u, v in orientation:
        if not graph.has_edge(u, v):
            return False
        out_degree[u] += 1
        in_degree[v] += 1
        used.add_edge(u, v)
    if not graph.is_multigraph():
        # Every undirected edge must appear exactly once.
        seen = {frozenset((u, v)) for u, v in orientation}
        if len(seen) != expected:
            return False
    return all(out_degree[node] == in_degree[node] for node in graph.nodes)


def forests_decomposition(graph: nx.Graph, arboricity_bound: int) -> List[Set[Tuple[Node, Node]]]:
    """Barenboim-Elkin style forest decomposition (Lemma 8.5 ingredient).

    Repeatedly peels nodes of degree at most ``2 * arboricity_bound`` and
    assigns each peeled node's remaining edges to distinct forests.  Returns a
    list of edge sets, each of which is a forest; their union is ``E``.  The
    number of forests is ``O(arboricity_bound)`` for graphs whose arboricity is
    at most ``arboricity_bound`` (and the function simply returns more forests
    otherwise rather than failing).
    """
    if arboricity_bound < 1:
        raise ValueError("arboricity_bound must be positive")
    degree = {node: graph.degree(node) for node in graph.nodes}
    removed: Set[Node] = set()
    peel_order: List[Node] = []
    # Iteratively peel low-degree nodes (H-partition).
    working_degree = dict(degree)
    while len(removed) < graph.number_of_nodes():
        layer = [
            node
            for node in graph.nodes
            if node not in removed and working_degree[node] <= 2 * arboricity_bound
        ]
        if not layer:
            # Graph denser than the bound: peel the minimum-degree node to
            # guarantee progress.
            layer = [
                min(
                    (node for node in graph.nodes if node not in removed),
                    key=lambda node: (working_degree[node], str(node)),
                )
            ]
        for node in sorted(layer, key=str):
            peel_order.append(node)
            removed.add(node)
            for neighbor in graph.neighbors(node):
                if neighbor not in removed:
                    working_degree[neighbor] -= 1

    rank = {node: index for index, node in enumerate(peel_order)}
    forests: List[Set[Tuple[Node, Node]]] = []
    for node in peel_order:
        # Edges toward later-peeled neighbors are "owned" by `node`; spread them
        # over distinct forests.
        owned = [
            neighbor for neighbor in graph.neighbors(node) if rank[neighbor] > rank[node]
        ]
        for slot, neighbor in enumerate(sorted(owned, key=str)):
            while len(forests) <= slot:
                forests.append(set())
            forests[slot].add((node, neighbor))
    return forests


class EulerOracle:
    """The oracle ``O_Euler`` with the eO(1)-round cost of Lemma 8.6 charged."""

    def __init__(self, simulator: HybridSimulator) -> None:
        self.simulator = simulator
        self.calls = 0

    def orient(self, subgraph: nx.Graph) -> List[Tuple[Node, Node]]:
        orientation = eulerian_orientation(subgraph)
        log_n = log2_ceil(max(self.simulator.n, 2))
        self.simulator.charge_rounds(
            2 * log_n,
            "Eulerian-orientation oracle call",
            "Lemma 8.6",
        )
        self.calls += 1
        return orientation
