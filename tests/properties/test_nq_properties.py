"""Property-based tests for the neighborhood-quality parameter (Section 3.2).

These check the paper's structural lemmas about NQ_k on randomly generated
connected graphs:

* Observation 3.2:  if NQ_k < D then |B_{NQ_k}(v)| >= k / NQ_k for every v.
* Lemma 3.6:        sqrt(D k / 3n) < NQ_k <= min(D, sqrt k).
* Lemma 3.7:        NQ_{alpha k} <= 6 sqrt(alpha) NQ_k.
* Lemma 3.8:        there is a node v with |B_r(v)| < k / r for all r < NQ_k.
* Monotonicity:     NQ_k is non-decreasing in k.
"""

import math

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.core.neighborhood_quality import (
    neighborhood_quality,
    neighborhood_quality_per_node,
)
from repro.graphs.properties import ball_size, diameter


# ----------------------------------------------------------------------
# Random connected graph strategy
# ----------------------------------------------------------------------
@st.composite
def connected_graphs(draw, min_nodes=4, max_nodes=40):
    """A random connected graph built from a random tree plus random extra edges."""
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    # Random tree via random parent assignment (guarantees connectivity).
    parents = [draw(st.integers(min_value=0, max_value=i - 1)) for i in range(1, n)]
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for child, parent in enumerate(parents, start=1):
        graph.add_edge(child, parent)
    extra_edges = draw(st.integers(min_value=0, max_value=2 * n))
    for _ in range(extra_edges):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            graph.add_edge(u, v)
    return graph


@st.composite
def graph_and_k(draw):
    graph = draw(connected_graphs())
    k = draw(st.integers(min_value=1, max_value=3 * graph.number_of_nodes()))
    return graph, k


@settings(max_examples=40, deadline=None)
@given(graph_and_k())
def test_lemma_3_6_upper_bound(data):
    graph, k = data
    d = diameter(graph)
    nq = neighborhood_quality(graph, k)
    assert nq <= d
    assert nq <= math.ceil(math.sqrt(k))


@settings(max_examples=40, deadline=None)
@given(graph_and_k())
def test_lemma_3_6_lower_bound(data):
    graph, k = data
    n = graph.number_of_nodes()
    d = diameter(graph)
    nq = neighborhood_quality(graph, k)
    if d == 0:
        return
    assert nq >= math.sqrt(d * k / (3.0 * n)) - 1


@settings(max_examples=40, deadline=None)
@given(graph_and_k())
def test_observation_3_2(data):
    graph, k = data
    d = diameter(graph)
    nq = neighborhood_quality(graph, k)
    if nq >= d or nq == 0:
        return
    for v in graph.nodes:
        assert ball_size(graph, v, nq) >= k / nq


@settings(max_examples=40, deadline=None)
@given(graph_and_k())
def test_lemma_3_8_witness_node(data):
    graph, k = data
    nq = neighborhood_quality(graph, k)
    if nq <= 1:
        return
    per_node = neighborhood_quality_per_node(graph, k)
    witness = max(per_node, key=lambda v: per_node[v])
    for r in range(1, nq):
        assert ball_size(graph, witness, r) < k / r


@settings(max_examples=30, deadline=None)
@given(graph_and_k(), st.integers(min_value=1, max_value=6))
def test_lemma_3_7_growth(data, alpha):
    graph, k = data
    nq_k = neighborhood_quality(graph, k)
    nq_alpha_k = neighborhood_quality(graph, alpha * k)
    assert nq_alpha_k <= 6 * math.sqrt(alpha) * max(nq_k, 1)


@settings(max_examples=30, deadline=None)
@given(connected_graphs())
def test_monotone_in_k(graph):
    ks = [1, 2, 4, 8, 16, 32]
    values = [neighborhood_quality(graph, k) for k in ks]
    assert values == sorted(values)


@settings(max_examples=30, deadline=None)
@given(graph_and_k())
def test_max_over_nodes_definition(data):
    graph, k = data
    per_node = neighborhood_quality_per_node(graph, k)
    assert neighborhood_quality(graph, k) == max(per_node.values())
