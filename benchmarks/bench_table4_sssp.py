"""Table 4 reproduction: single-source shortest paths.

Paper claim (Table 4): a (1+eps)-approximation of SSSP is computable in
eO(1/eps^2) rounds, deterministically, in HYBRID_0 (Theorem 13), improving on
eO(n^{1/2}) [AG21a], eO(n^{5/17}) [CHLP21b] and eO(n^eps) [AHK+20].

The benchmark measures the Theorem 13 implementation over an n sweep: the
stretch must hold everywhere and the round count must stay polylogarithmic
(flat, up to log factors) while every prior bound grows polynomially with n —
the crossover the paper's Table 4 expresses.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_table4_sssp
from repro.graphs.generators import GraphSpec
from repro.simulator.config import log2_ceil

SPECS = [
    GraphSpec.of("grid", side=5, dim=2),
    GraphSpec.of("grid", side=8, dim=2),
    GraphSpec.of("grid", side=11, dim=2),
    GraphSpec.of("grid", side=14, dim=2),
]


def _sssp_rows():
    return [run_table4_sssp(spec, epsilon=0.25, seed=1) for spec in SPECS]


def test_table4_sssp(benchmark, save_table):
    rows = benchmark.pedantic(_sssp_rows, rounds=1, iterations=1)
    save_table("table4_sssp", rows, "Table 4 - SSSP (Theorem 13)")
    for row in rows:
        assert row["stretch measured"] <= row["stretch bound"] + 1e-6
    # Scaling shape: the Theorem 13 rounds are polylogarithmic in n — dividing
    # by log^2 n must leave an essentially constant series, i.e. the rounds do
    # NOT grow polynomially with n (on small instances the absolute polylog
    # constant still exceeds n^{5/17}; the paper's comparison is asymptotic).
    normalized = [
        row["rounds (Thm 13, total)"] / (log2_ceil(int(row["n"])) ** 2) for row in rows
    ]
    assert max(normalized) <= 1.3 * min(normalized)
