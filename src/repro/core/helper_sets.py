"""Helper sets.

Two flavours are used in the paper:

* **Adaptive helper sets** (Definition 5.1, Lemma 5.2, Algorithm 1) — used by the
  (k,l)-routing algorithm.  Given a set ``W`` whose members were sampled with
  probability at most ``NQ_k / k``, each ``w in W`` receives a helper set
  ``H_w`` with ``|H_w| >= k / NQ_k``, all helpers within ``eO(NQ_k)`` hops of
  ``w``, and every node serving in at most ``eO(1)`` helper sets.  The
  construction samples helpers inside ``w``'s NQ_k-cluster with probability
  ``q_C = min(1, (k / NQ_k) * (8 c ln n) / |C|)``.

* **Classic helper sets** (Definition 9.1, [KS20]) — used by the k-SSP
  scheduling framework (Lemma 9.3).  Given ``W`` sampled with probability
  ``1/x``, each ``w`` gets ``mu = Theta(x)`` helpers within ``mu`` hops, with
  every node in ``eO(1)`` sets.

Both constructions are randomized; the paper's "w.h.p." size/overlap guarantees
are exercised statistically in the tests.
"""

from __future__ import annotations

import dataclasses
import math
import random
from collections import defaultdict
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set

import networkx as nx

from repro.core.clustering import Clustering, distributed_nq_clustering, nq_clustering
from repro.graphs.properties import hop_distances_from
from repro.simulator.config import log2_ceil
from repro.simulator.network import HybridSimulator

Node = Hashable

__all__ = [
    "HelperAssignment",
    "compute_adaptive_helper_sets",
    "compute_classic_helper_sets",
]


@dataclasses.dataclass
class HelperAssignment:
    """A family of helper sets ``{H_w | w in W}`` plus bookkeeping."""

    helpers: Dict[Node, List[Node]]
    load: Dict[Node, int]

    def helpers_of(self, w: Node) -> List[Node]:
        return list(self.helpers[w])

    def max_load(self) -> int:
        return max(self.load.values()) if self.load else 0

    def min_helper_count(self) -> int:
        if not self.helpers:
            return 0
        return min(len(h) for h in self.helpers.values())


def compute_adaptive_helper_sets(
    simulator: HybridSimulator,
    targets: Iterable[Node],
    k: int,
    *,
    nq: Optional[int] = None,
    clustering: Optional[Clustering] = None,
    seed: Optional[int] = None,
    ln_factor: float = 2.0,
) -> HelperAssignment:
    """Lemma 5.2 / Algorithm 1: adaptive helper sets for ``targets``.

    ``ln_factor`` plays the role of the ``8c ln n`` constant; the default keeps
    helper sets a small constant factor above ``k / NQ_k`` on the instance sizes
    used in tests and benchmarks.

    Round accounting (charged): computing ``NQ_k`` (Lemma 3.3), the clustering
    (Lemma 3.5), and the intra-cluster coordination (learning ``C`` and
    ``C ∩ W`` over the local mode within the weak diameter).
    """
    target_list = sorted(set(targets), key=simulator.id_of)
    if k <= 0:
        raise ValueError("k must be positive")
    rng = random.Random(seed)
    if clustering is None:
        clustering = distributed_nq_clustering(simulator, k, nq=nq)
    nq_value = max(1, clustering.nq)
    log_n = log2_ceil(max(simulator.n, 2))
    simulator.charge_rounds(
        4 * nq_value * log_n,
        "intra-cluster coordination for adaptive helper sets",
        "Lemma 5.2",
    )

    desired = max(1.0, k / nq_value)
    helpers: Dict[Node, List[Node]] = {}
    load: Dict[Node, int] = defaultdict(int)
    for w in target_list:
        cluster = clustering.cluster_containing(w)
        members = sorted(cluster.members, key=simulator.id_of)
        probability = min(1.0, desired * ln_factor * math.log(max(simulator.n, 2)) / len(members))
        chosen = [v for v in members if rng.random() < probability]
        if not chosen:
            chosen = [w]
        helpers[w] = chosen
        for v in chosen:
            load[v] += 1
    for node in simulator.nodes:
        load.setdefault(node, 0)
    return HelperAssignment(helpers=helpers, load=dict(load))


def compute_classic_helper_sets(
    graph: nx.Graph,
    targets: Iterable[Node],
    x: int,
    *,
    seed: Optional[int] = None,
) -> HelperAssignment:
    """Definition 9.1 / Lemma 9.2: helper sets of size ``Theta(x)`` within ``O(x)`` hops.

    Each ``w`` claims the ``x`` nodes closest to it (BFS order, deterministic tie
    break), preferring less-loaded nodes among equidistant candidates, which in
    practice keeps the per-node load logarithmic when ``targets`` was sampled
    with probability ``~1/x``.
    """
    if x < 1:
        raise ValueError("x must be at least 1")
    rng = random.Random(seed)
    target_list = sorted(set(targets), key=str)
    helpers: Dict[Node, List[Node]] = {}
    load: Dict[Node, int] = defaultdict(int)
    for w in target_list:
        distances = hop_distances_from(graph, w)
        # Candidates within O(x) hops, by (distance, current load, label).
        candidates = [node for node, dist in distances.items() if dist <= 2 * x]
        candidates.sort(key=lambda node: (distances[node], load[node], str(node)))
        chosen = candidates[: max(1, x)]
        if w not in chosen:
            chosen = [w] + chosen[: max(0, x - 1)]
        helpers[w] = chosen
        for node in chosen:
            load[node] += 1
    for node in graph.nodes:
        load.setdefault(node, 0)
    return HelperAssignment(helpers=helpers, load=dict(load))
