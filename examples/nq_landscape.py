"""Explore the neighborhood-quality landscape (Section 3.3, Appendix B).

Prints, for a zoo of graph families and a sweep of workloads ``k``, the
measured ``NQ_k`` next to the paper's closed-form predictions (Theorems 15-17)
and the general bounds of Lemma 3.6 — the same data the
``bench_nq_families`` benchmark records, in a human-browsable form.

Run with ``python examples/nq_landscape.py``.
"""

from __future__ import annotations

from repro.analysis.experiments import run_nq_family_point
from repro.analysis.tables import ExperimentRow, render_table
from repro.graphs import GraphSpec


def main() -> None:
    specs = [
        GraphSpec.of("path", n=144),
        GraphSpec.of("cycle", n=144),
        GraphSpec.of("grid", side=12, dim=2),
        GraphSpec.of("torus", side=5, dim=3),
        GraphSpec.of("star", n=144),
        GraphSpec.of("tree", branching=2, height=7),
        GraphSpec.of("erdos_renyi", n=144, p=0.05, seed=3),
        GraphSpec.of("barbell", clique_size=36, path_length=72),
    ]
    ks = [9, 36, 144, 576]

    rows = []
    for spec in specs:
        for k in ks:
            rows.append(ExperimentRow(run_nq_family_point(spec, k)))
    print(render_table(rows, title="NQ_k across graph families (Theorems 15-17, Lemma 3.6)"))
    print()
    print(
        "Reading guide: 'NQ_k measured' should track 'NQ_k predicted' up to a\n"
        "constant factor on paths/cycles/grids, and always sit between the two\n"
        "Lemma 3.6 bounds.  Low-NQ families (star, expander-like random graphs)\n"
        "are the ones on which the paper's universally optimal algorithms beat\n"
        "the existential sqrt(k)/sqrt(n) algorithms by a polynomial factor."
    )


if __name__ == "__main__":
    main()
