"""Sharded multi-core round planner + charge-only simulation benchmark.

Acceptance check for the sharded scheduler and charge-only mode at
production scale, in two smoke workloads and one large-tier workload:

* **Sharded planning** — a multi-component congested plane of m=10^5 tokens
  (64 node-disjoint groups hammering per-group hot receivers with
  non-uniform token sizes, so neither the uncongested nor the closed-form
  uniform path short-circuits the scheduler).  The 4-worker process-pool
  :class:`~repro.simulator.sharding.ShardedPlanner` must produce a schedule
  **token-for-token identical** to the single-process
  :func:`~repro.simulator.engine.plan_token_rounds` and be at least
  ``SHARDED_ENGINE_MIN_SPEEDUP`` times faster (default 1.8 on a quiet
  multi-core machine; CI relaxes the floor for shared runners).  On a
  single-core host the parallel floor is physically unmeasurable, so it is
  *waived* — reported, asserted only for identity — whenever
  ``cpu_count() < 2``.  Identity is never relaxed.

* **Charge-only dissemination** — ``KDissemination`` k=4096 on an n=10^4
  path in payload mode vs ``HybridSimulator(charge_only=True)``.  Metric
  summaries and round counts must be **bit-identical** (the whole point of
  charge-only mode: exact accounting, no payload materialisation); the
  speedup is reported, with a lenient sanity floor
  (``CHARGE_ONLY_MIN_SPEEDUP``, default 0.9) because eliding payloads must
  never make the run meaningfully slower.

* **Parallel delivery stages** — the four
  :class:`~repro.simulator.sharding.ShardedDelivery` stages (fault keep-mask,
  grouped capacity counters, the round capacity sweep, fresh-pair filtering)
  at production scale: m=2x10^6 tokens over n=2^22 nodes, 4-worker pool vs
  the serial whole-array twin.  Results must be **bit-identical** (asserted
  in the same run); the speedup floor is relaxed
  (``SHARDED_DELIVERY_MIN_SPEEDUP``, default 1.2) and *waived* on
  single-core hosts — identity is never relaxed.

* **Large tier** (``BENCH_SCALE=large``, the scheduled CI job) — charge-only
  ``KDissemination`` k=4096 on an n=10^6 **star**, run end-to-end twice:
  serial (no planner) vs a 4-worker installed planner, asserting bit-equal
  metrics and an end-to-end round-engine speedup of at least
  ``SHARDED_E2E_MIN_SPEEDUP`` (default 1.5; waived on single-core hosts).
  The star keeps NQ_k at 2 (the center's radius-1 ball is the whole graph),
  which yields few, large clusters and a down-cast volume that fits in
  memory — a payload run at this scale would materialise ~10^7 token
  objects; charge-only completes on the words columns alone.  NQ is passed
  as a precomputed hint (``nq=2`` by inspection) because the centralized NQ
  computation is Theta(n^2) on a star and is not what this benchmark
  measures.  The tier also records the **n=10^7** charge-only star point —
  rounds and wall-clock under the 4-worker parallel delivery path, the
  paper-scale tier the sharded engine exists for.

Each run writes ``BENCH_sharded_engine.json`` next to the ASCII tables (see
``_artifacts.py``).

Run directly (``python benchmarks/bench_sharded_engine.py``) or through
pytest (``pytest benchmarks/bench_sharded_engine.py``).
"""

from __future__ import annotations

import os
import random
import time
from typing import Any, Dict, List

import pytest

from _artifacts import update_trajectory, write_bench_artifact
from repro.core.dissemination import KDissemination
from repro.core.neighborhood_quality import neighborhood_quality
from repro.graphs.generators import path_graph, star_graph
from repro.simulator import _accel
from repro.simulator._accel import cpu_count
from repro.simulator.config import ModelConfig
from repro.simulator.engine import TokenPlane, install_planner, plan_token_rounds
from repro.simulator.network import HybridSimulator
from repro.simulator.sharding import (
    ShardedPlanner,
    filter_fresh_keys,
    span_keep_mask,
)

M_TOKENS = 100_000
GROUPS = 64
GROUP_NODES = 32
BUDGET = 57
TAG_WORDS = 1
WORKERS = 4
N_DISSEMINATION = 10_000
K_DISSEMINATION = 4096
N_LARGE = 1_000_000
N_XL = 10_000_000
M_DELIVERY = 2_000_000
N_DELIVERY_NODES = 1 << 22
SEED = 11
REPEATS = 3
#: Quiet-multi-core acceptance bar for the 4-worker planner.  Shared CI
#: runners relax it via SHARDED_ENGINE_MIN_SPEEDUP; single-core hosts waive
#: it entirely (identity is still asserted).
REQUIRED_SPEEDUP = float(os.environ.get("SHARDED_ENGINE_MIN_SPEEDUP", "1.8"))
#: Charge-only mode elides work, so it must never be meaningfully slower
#: than the payload run; the real acceptance criterion is metric identity.
CHARGE_ONLY_FLOOR = float(os.environ.get("CHARGE_ONLY_MIN_SPEEDUP", "0.9"))
#: Relaxed floor for the pooled delivery stages (IPC overhead is real;
#: identity is the hard criterion).  Waived when ``cpu_count() < 2``.
DELIVERY_FLOOR = float(os.environ.get("SHARDED_DELIVERY_MIN_SPEEDUP", "1.2"))
#: End-to-end round-engine floor for the 4-worker vs serial n=10^6
#: charge-only dissemination (the issue's acceptance bar).  Waived when
#: ``cpu_count() < 2``.
E2E_FLOOR = float(os.environ.get("SHARDED_E2E_MIN_SPEEDUP", "1.5"))


def _planning_plane() -> TokenPlane:
    """64 node-disjoint congested groups, non-uniform token sizes.

    Every group's hot receiver takes ~3/4 of the group's tokens, so every
    group is congested (multi-round) and the plane has 64 bipartite
    components — the partition path must engage, and neither the
    uncongested fast path nor the uniform-words closed form applies.
    """
    rng = random.Random(SEED)
    per_group = M_TOKENS // GROUPS
    senders: List[int] = []
    receivers: List[int] = []
    words: List[int] = []
    for group in range(GROUPS):
        base = group * GROUP_NODES
        hot = base
        for i in range(per_group):
            senders.append(base + rng.randrange(1, GROUP_NODES))
            receivers.append(hot if i % 4 else base + rng.randrange(GROUP_NODES))
            words.append(rng.choice([1, 2, 3, 5, 9]))
    return TokenPlane(senders, receivers, words, None)


def _schedules_identical(left, right) -> bool:
    if len(left) != len(right):
        return False
    return all(
        [int(p) for p in a] == [int(p) for p in b] for a, b in zip(left, right)
    )


def run_sharded_planning_comparison() -> Dict[str, Any]:
    plane = _planning_plane()
    cores = cpu_count()
    with ShardedPlanner(
        WORKERS, use_processes=True, min_tokens=1, process_min_tokens=4096
    ) as planner:
        planner.plan(plane, BUDGET, TAG_WORDS)  # warm the pool off the clock
        single_best = float("inf")
        sharded_best = float("inf")
        reference = None
        sharded = None
        for _ in range(REPEATS):  # interleave to average out machine drift
            start = time.perf_counter()
            reference = plan_token_rounds(plane, BUDGET, TAG_WORDS)
            single_best = min(single_best, time.perf_counter() - start)
            start = time.perf_counter()
            sharded = planner.plan(plane, BUDGET, TAG_WORDS)
            sharded_best = min(sharded_best, time.perf_counter() - start)
        pool_alive = not planner._pool_broken
        process_plans = planner.process_plans
    return {
        "workload": f"sharded planning m={M_TOKENS} groups={GROUPS}",
        "workers": WORKERS,
        "cores": cores,
        "single seconds (best)": round(single_best, 4),
        "sharded seconds (best)": round(sharded_best, 4),
        "speedup": round(single_best / sharded_best, 2),
        "floor": REQUIRED_SPEEDUP,
        "floor waived (single core)": cores < 2,
        "identical schedule": _schedules_identical(sharded, reference),
        "rounds": len(reference),
        "process pool": pool_alive and process_plans > 0,
    }


def run_charge_only_comparison() -> Dict[str, Any]:
    graph = path_graph(N_DISSEMINATION)
    rng = random.Random(SEED)
    tokens: Dict[int, List[Any]] = {}
    for index in range(K_DISSEMINATION):
        tokens.setdefault(rng.randrange(N_DISSEMINATION), []).append(("tok", index))
    nq = max(1, neighborhood_quality(graph, K_DISSEMINATION))

    def run(charge_only: bool):
        simulator = HybridSimulator(
            graph, ModelConfig.hybrid0(), seed=3, charge_only=charge_only
        )
        algorithm = KDissemination(
            simulator, tokens, nq=nq, charge_only=charge_only
        )
        start = time.perf_counter()
        result = algorithm.run()
        return time.perf_counter() - start, result, simulator

    times = {False: float("inf"), True: float("inf")}
    outcomes = {}
    for _ in range(REPEATS):
        for charge_only in (False, True):
            elapsed, result, simulator = run(charge_only)
            times[charge_only] = min(times[charge_only], elapsed)
            outcomes[charge_only] = (result, simulator)
    payload_result, payload_sim = outcomes[False]
    charged_result, charged_sim = outcomes[True]
    return {
        "workload": f"charge-only KDissemination k={K_DISSEMINATION}",
        "n": N_DISSEMINATION,
        "payload seconds (best)": round(times[False], 4),
        "charge-only seconds (best)": round(times[True], 4),
        "speedup": round(times[False] / times[True], 2),
        "identical metrics": payload_sim.metrics.diff(charged_sim.metrics) == {},
        "measured rounds": charged_sim.metrics.measured_rounds,
        "total rounds": charged_sim.metrics.total_rounds,
        "capacity violations": charged_sim.metrics.capacity_violations,
        "complete": payload_result.all_nodes_know_all_tokens()
        and charged_result.all_nodes_know_all_tokens(),
    }


def run_parallel_delivery_stages() -> Dict[str, Any]:
    """The four ShardedDelivery stages at production scale, pool vs serial.

    m=2x10^6 tokens over n=2^22 nodes: the fault keep-mask, the grouped
    capacity counters, the round capacity sweep and the fresh-pair filter.
    The pooled results must be bit-identical to the serial whole-array twin
    (asserted here); the speedup is the sum of best stage times.
    """
    np = _accel.np
    cores = cpu_count()
    if np is None:
        return {
            "workload": "parallel delivery stages",
            "skipped": "NumPy unavailable",
            "identical results": True,
            "floor waived (single core)": True,
        }
    n = N_DELIVERY_NODES
    rng = np.random.default_rng(SEED)
    senders = rng.integers(0, n, M_DELIVERY, dtype=np.int64)
    receivers = rng.integers(0, n, M_DELIVERY, dtype=np.int64)
    wt = rng.integers(1, 4, M_DELIVERY, dtype=np.int64)
    crashed = np.unique(rng.integers(0, n, n // 100, dtype=np.int64))
    failed = np.unique(
        rng.integers(0, n, 2_000, dtype=np.int64) * n
        + rng.integers(0, n, 2_000, dtype=np.int64)
    )
    keys = receivers * n + senders
    levels = (np.unique(rng.integers(0, n * n, 1_000_000, dtype=np.int64)),)
    budget = int(np.bincount(senders, weights=wt, minlength=n).max() * 0.75)

    def serial_stages():
        mask = span_keep_mask(np, senders, receivers, crashed, failed, n)
        sent = np.bincount(senders, weights=wt, minlength=n)
        recv = np.bincount(receivers, weights=wt, minlength=n)
        triples = []
        for arr in (sent, recv):
            over = arr > budget
            count = int(over.sum())
            first = int(np.argmax(over)) if count else -1
            triples.append((int(arr.max()), count, first))
        fresh = filter_fresh_keys(np, keys, levels)
        return mask, sent, recv, triples, fresh

    with ShardedPlanner(WORKERS, use_processes=True, min_tokens=1) as planner:
        engine = planner.delivery()
        engine.min_tokens = 1

        def pooled_stages():
            mask = engine.keep_mask(np, senders, receivers, crashed, failed, n)
            sent = np.zeros(n)
            recv = np.zeros(n)
            engine.apply_counters(np, senders, receivers, wt, sent, recv)
            swept = engine.sweep(np, sent, recv, budget)
            fresh = engine.fresh_keys(np, keys, levels)
            return mask, sent, recv, swept, fresh

        pooled_stages()  # warm the pool off the clock
        serial_best = float("inf")
        pooled_best = float("inf")
        serial = pooled = None
        for _ in range(REPEATS):
            start = time.perf_counter()
            serial = serial_stages()
            serial_best = min(serial_best, time.perf_counter() - start)
            start = time.perf_counter()
            pooled = pooled_stages()
            pooled_best = min(pooled_best, time.perf_counter() - start)
        pool_alive = not planner._pool_broken
        pool_stages = engine.pool_stages
    identical = (
        bool(np.array_equal(serial[0], pooled[0]))
        and bool(np.array_equal(serial[1], pooled[1]))
        and bool(np.array_equal(serial[2], pooled[2]))
        and (pooled[3] is None or serial[3] == [tuple(t) for t in pooled[3]])
        and bool(np.array_equal(serial[4], pooled[4]))
    )
    return {
        "workload": f"parallel delivery stages m={M_DELIVERY} n=2^22",
        "workers": WORKERS,
        "cores": cores,
        "serial seconds (best)": round(serial_best, 4),
        "pooled seconds (best)": round(pooled_best, 4),
        "speedup": round(serial_best / pooled_best, 2),
        "floor": DELIVERY_FLOOR,
        "floor waived (single core)": cores < 2,
        "identical results": identical,
        "process pool": pool_alive and pool_stages > 0,
    }


def _large_star_workload():
    graph = star_graph(N_LARGE)
    rng = random.Random(SEED)
    tokens: Dict[int, List[Any]] = {}
    for index in range(K_DISSEMINATION):
        tokens.setdefault(rng.randrange(N_LARGE), []).append(("tok", index))
    return graph, tokens


def run_parallel_dissemination_large() -> Dict[str, Any]:
    """End-to-end n=10^6 charge-only star dissemination, 4 workers vs 1.

    The issue's acceptance bar: round-engine speedup >= E2E_FLOOR with
    strict metric identity asserted in the same run (floor waived on
    single-core hosts; identity never waived).
    """
    graph, tokens = _large_star_workload()
    cores = cpu_count()

    def run(planner):
        install_planner(planner)
        try:
            simulator = HybridSimulator(
                graph, ModelConfig.hybrid0(), seed=3, charge_only=True
            )
            # NQ_k(star) = 2 by inspection (the center's radius-1 ball is the
            # whole graph); the centralized NQ computation is Theta(n^2) here.
            algorithm = KDissemination(
                simulator, tokens, nq=2, charge_only=True
            )
            start = time.perf_counter()
            result = algorithm.run()
            return time.perf_counter() - start, result, simulator
        finally:
            install_planner(None)

    serial_seconds, serial_result, serial_sim = run(None)
    with ShardedPlanner(WORKERS, use_processes=True) as planner:
        parallel_seconds, parallel_result, parallel_sim = run(planner)
        pool_alive = not planner._pool_broken
    return {
        "workload": f"charge-only star KDissemination k={K_DISSEMINATION}, "
        f"{WORKERS} workers vs 1",
        "n": N_LARGE,
        "cores": cores,
        "serial seconds": round(serial_seconds, 2),
        "parallel seconds": round(parallel_seconds, 2),
        "speedup": round(serial_seconds / parallel_seconds, 2),
        "floor": E2E_FLOOR,
        "floor waived (single core)": cores < 2,
        "identical metrics": serial_sim.metrics.diff(parallel_sim.metrics) == {},
        "total rounds": parallel_result.metrics.total_rounds,
        "global words": parallel_result.metrics.global_words,
        "capacity violations": parallel_result.metrics.capacity_violations,
        "complete": serial_result.all_nodes_know_all_tokens()
        and parallel_result.all_nodes_know_all_tokens(),
        "process pool": pool_alive,
    }


def run_charge_only_xl_tier() -> Dict[str, Any]:
    """The n=10^7 charge-only star point under the parallel delivery path."""
    graph = star_graph(N_XL)
    rng = random.Random(SEED)
    tokens: Dict[int, List[Any]] = {}
    for index in range(K_DISSEMINATION):
        tokens.setdefault(rng.randrange(N_XL), []).append(("tok", index))
    with ShardedPlanner(WORKERS, use_processes=True) as planner:
        install_planner(planner)
        try:
            simulator = HybridSimulator(
                graph, ModelConfig.hybrid0(), seed=3, charge_only=True
            )
            algorithm = KDissemination(
                simulator, tokens, nq=2, charge_only=True
            )
            start = time.perf_counter()
            result = algorithm.run()
            elapsed = time.perf_counter() - start
        finally:
            install_planner(None)
    return {
        "workload": f"charge-only star KDissemination k={K_DISSEMINATION}",
        "n": N_XL,
        "workers": WORKERS,
        "seconds": round(elapsed, 2),
        "total rounds": result.metrics.total_rounds,
        "global words": result.metrics.global_words,
        "capacity violations": result.metrics.capacity_violations,
        "complete": result.all_nodes_know_all_tokens(),
    }


def _check_smoke(rows: List[Dict[str, Any]]) -> None:
    planning, charge, delivery = rows
    assert planning["identical schedule"], (
        "sharded planner diverged from the single-process schedule"
    )
    if not planning["floor waived (single core)"]:
        assert planning["speedup"] >= REQUIRED_SPEEDUP, (
            f"sharded planning speedup {planning['speedup']}x below the "
            f"required {REQUIRED_SPEEDUP}x on {planning['cores']} cores"
        )
    assert charge["complete"], "charge-only dissemination failed to deliver"
    assert charge["identical metrics"], (
        "charge-only metrics diverged from the payload run"
    )
    assert charge["capacity violations"] == 0
    assert charge["speedup"] >= CHARGE_ONLY_FLOOR, (
        f"charge-only run {charge['speedup']}x vs payload — below the "
        f"{CHARGE_ONLY_FLOOR}x sanity floor"
    )
    assert delivery["identical results"], (
        "pooled delivery stages diverged from the serial twin"
    )
    if "skipped" not in delivery and not delivery["floor waived (single core)"]:
        assert delivery["speedup"] >= DELIVERY_FLOOR, (
            f"pooled delivery stages {delivery['speedup']}x below the "
            f"{DELIVERY_FLOOR}x floor on {delivery['cores']} cores"
        )


def _write_artifact(rows: List[Dict[str, Any]]) -> None:
    write_bench_artifact(
        "sharded_engine",
        rows,
        m_tokens=M_TOKENS,
        workers=WORKERS,
        cores=cpu_count(),
        n_dissemination=N_DISSEMINATION,
        k_dissemination=K_DISSEMINATION,
        m_delivery=M_DELIVERY,
        repeats=REPEATS,
        required_speedup=REQUIRED_SPEEDUP,
        delivery_floor=DELIVERY_FLOOR,
        e2e_floor=E2E_FLOOR,
    )
    planning, charge, delivery = rows[0], rows[1], rows[2]
    update_trajectory(
        "sharded_engine",
        f"sharded planner {planning['speedup']}x and delivery stages "
        f"{delivery.get('speedup', 'n/a')}x on {planning['cores']} cores "
        f"(bit-identical schedules and stage results), charge-only "
        f"dissemination {charge['speedup']}x with bit-identical metrics at "
        f"n={N_DISSEMINATION}",
    )


def test_sharded_engine(save_table):
    rows = [
        run_sharded_planning_comparison(),
        run_charge_only_comparison(),
        run_parallel_delivery_stages(),
    ]
    save_table(
        "sharded_engine",
        rows,
        f"Sharded planner + delivery ({WORKERS} workers) + charge-only mode",
    )
    _write_artifact(rows)
    _check_smoke(rows)


def test_sharded_engine_large_tier(save_table):
    """n=10^6 4-vs-1 dissemination; runs in the scheduled CI job."""
    if os.environ.get("BENCH_SCALE") != "large":
        pytest.skip("large tier runs in the scheduled CI job (BENCH_SCALE=large)")
    row = run_parallel_dissemination_large()
    save_table(
        "sharded_engine_large_tier",
        [row],
        f"Charge-only dissemination at n={N_LARGE} (star), "
        f"{WORKERS} workers vs 1",
    )
    assert row["complete"], "charge-only large-tier dissemination incomplete"
    assert row["identical metrics"], (
        "parallel dissemination metrics diverged from the serial run"
    )
    assert row["capacity violations"] == 0
    if not row["floor waived (single core)"]:
        assert row["speedup"] >= E2E_FLOOR, (
            f"end-to-end round-engine speedup {row['speedup']}x below the "
            f"{E2E_FLOOR}x floor on {row['cores']} cores"
        )


def test_sharded_engine_xl_tier(save_table):
    """The n=10^7 charge-only star point; runs in the scheduled CI job."""
    if os.environ.get("BENCH_SCALE") != "large":
        pytest.skip("xl tier runs in the scheduled CI job (BENCH_SCALE=large)")
    row = run_charge_only_xl_tier()
    save_table(
        "sharded_engine_xl_tier",
        [row],
        f"Charge-only dissemination at n={N_XL} (star)",
    )
    assert row["complete"], "charge-only xl-tier dissemination incomplete"
    assert row["capacity violations"] == 0


def main() -> None:
    rows = [
        run_sharded_planning_comparison(),
        run_charge_only_comparison(),
        run_parallel_delivery_stages(),
    ]
    if os.environ.get("BENCH_SCALE") == "large":
        rows.append(run_parallel_dissemination_large())
        rows.append(run_charge_only_xl_tier())
    for row in rows:
        width = max(len(key) for key in row)
        for key, value in row.items():
            print(f"{key:<{width}}  {value}")
        print()
    _write_artifact(rows[:3])
    _check_smoke(rows[:3])
    for row in rows[3:]:
        assert row["complete"]
    print(
        "OK: sharded schedules and delivery stages identical; "
        "charge-only metrics bit-identical."
    )


if __name__ == "__main__":
    main()
