"""Seeded randomized equivalence properties of the vectorised round engine.

The token-plane scheduler must be **schedule-identical** to the retained
greedy reference (``_reference_shard_transfers``) on every workload shape —
uncongested, congested, mixed token sizes, oversized tokens hitting the
forced-through branch — under both array backends (NumPy and the pure-Python
fallback).  The bulk id-native send paths must produce the same inboxes,
metrics, capacity accounting and knowledge as the tuple paths.  Each property
is exercised across seeds; the fallback is selected by monkeypatching
``repro.simulator._accel.np`` (exactly what ``REPRO_NO_NUMPY=1`` does at
import time).
"""

import random

import pytest

from repro.graphs.generators import erdos_renyi_graph, path_graph
from repro.simulator import _accel
from repro.simulator.config import ModelConfig
from repro.simulator.engine import (
    ExchangeTag,
    TokenPlane,
    _reference_batched_global_exchange,
    _reference_shard_transfers,
    batched_global_exchange,
    plan_token_rounds,
)
from repro.simulator.messages import GLOBAL_MODE, LOCAL_MODE, payload_words
from repro.simulator.network import HybridSimulator

SEEDS = [0, 1, 2, 3, 4]

requires_numpy = pytest.mark.skipif(
    _accel.np is None, reason="NumPy not available; vectorised leg is inactive"
)


@pytest.fixture(params=["numpy", "python"])
def backend(request, monkeypatch):
    """Run the test body under both array backends."""
    if request.param == "python":
        monkeypatch.setattr(_accel, "np", None)
    elif _accel.np is None:
        pytest.skip("NumPy not available; vectorised leg is inactive")
    return request.param


# ----------------------------------------------------------------------
# Workload generators (node indices in [0, n); words >= 1)
# ----------------------------------------------------------------------
def _congested_rank_matched(rng, n):
    """Uniform-word cyclic rank-matched traffic (the dissemination shape)."""
    senders, receivers, words = [], [], []
    for _ in range(rng.randrange(2, 5)):
        ns = rng.randrange(2, 7)
        nt = rng.randrange(1, 7)
        src = rng.sample(range(n), ns)
        tgt = rng.sample(range(n), nt)
        count = rng.randrange(20, 120)
        for position in range(count):
            rank = position % ns
            senders.append(src[rank])
            receivers.append(tgt[rank % nt])
            words.append(3)
    return senders, receivers, words


def _mixed_sizes(rng, n):
    """Random endpoints with heterogeneous token sizes."""
    count = rng.randrange(30, 150)
    senders = [rng.randrange(n) for _ in range(count)]
    receivers = [rng.randrange(n) for _ in range(count)]
    words = [rng.choice([1, 1, 2, 3, 5, 9]) for _ in range(count)]
    return senders, receivers, words


def _with_oversized(rng, n):
    """Mixed sizes plus tokens individually larger than any budget in use."""
    senders, receivers, words = _mixed_sizes(rng, n)
    for _ in range(rng.randrange(1, 5)):
        position = rng.randrange(len(words) + 1)
        senders.insert(position, rng.randrange(n))
        receivers.insert(position, rng.randrange(n))
        words.insert(position, 10_000)
    return senders, receivers, words


def _hot_receiver(rng, n):
    """Everyone hammers one receiver (worst-case receive congestion)."""
    count = rng.randrange(40, 120)
    target = rng.randrange(n)
    senders = [rng.randrange(n) for _ in range(count)]
    receivers = [target if rng.random() < 0.8 else rng.randrange(n) for _ in range(count)]
    words = [rng.choice([1, 2, 4]) for _ in range(count)]
    return senders, receivers, words


WORKLOADS = {
    "rank-matched": _congested_rank_matched,
    "mixed-sizes": _mixed_sizes,
    "oversized": _with_oversized,
    "hot-receiver": _hot_receiver,
}


def _reference_schedule(senders, receivers, words, budget, tag_words):
    tokens = [
        (senders[i], receivers[i], ("payload", i), words[i])
        for i in range(len(words))
    ]
    return [
        [token[2][1] for token in shard]
        for shard in _reference_shard_transfers(tokens, budget, tag_words)
    ]


# ----------------------------------------------------------------------
# Scheduler identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shape", sorted(WORKLOADS))
@pytest.mark.parametrize("seed", SEEDS)
def test_plan_token_rounds_is_schedule_identical(shape, seed, backend):
    rng = random.Random(hash((shape, seed)) & 0xFFFFFF)
    n = rng.randrange(10, 60)
    senders, receivers, words = WORKLOADS[shape](rng, n)
    budget = rng.choice([8, 13, 24, 57])
    tag_words = rng.choice([0, 1, 2])
    plane = TokenPlane(senders, receivers, words, [("payload", i) for i in range(len(words))])
    shards = plan_token_rounds(plane, budget, tag_words)
    actual = [[int(position) for position in shard] for shard in shards]
    expected = _reference_schedule(senders, receivers, words, budget, tag_words)
    assert actual == expected, (
        f"{shape} seed={seed} backend={backend}: shard boundaries diverged "
        f"from the greedy reference"
    )
    # Every token is scheduled exactly once, in FIFO order within each shard.
    flat = sorted(position for shard in actual for position in shard)
    assert flat == list(range(len(words)))


def test_forced_oversized_branch_matches_reference(backend):
    # Every token exceeds the budget: one forced token per round, FIFO.
    senders = [0, 1, 2, 0]
    receivers = [3, 4, 5, 3]
    words = [100, 100, 100, 100]
    plane = TokenPlane(senders, receivers, words, list(range(4)))
    shards = plan_token_rounds(plane, budget=8, tag_words=1)
    assert [[int(p) for p in shard] for shard in shards] == [[0], [1], [2], [3]]


# ----------------------------------------------------------------------
# Exchange equivalence (plane vs reference vs legacy transport)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_exchange_engines_deliver_identically(seed, backend):
    rng = random.Random(9000 + seed)
    graph = path_graph(24)
    senders, receivers, words = _mixed_sizes(rng, 24)
    # Real payload sizes (the engines compute words themselves here).
    triples = [
        (senders[i], receivers[i], ("m", i, "x" * (words[i] * 8 - 8)))
        for i in range(len(words))
    ]

    def fresh():
        return HybridSimulator(graph, ModelConfig.hybrid(), seed=seed)

    plane_sim = fresh()
    reference_sim = fresh()
    delivered_plane = batched_global_exchange(plane_sim, list(triples), tag="rt")
    delivered_reference = _reference_batched_global_exchange(
        reference_sim, list(triples), tag="rt"
    )
    assert delivered_plane == delivered_reference
    assert plane_sim.metrics.summary() == reference_sim.metrics.summary()

    # collect=False runs the identical schedule without assembling results.
    silent_sim = fresh()
    assert batched_global_exchange(silent_sim, list(triples), tag="rt", collect=False) == {}
    assert silent_sim.metrics.summary() == plane_sim.metrics.summary()


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_exchange_equivalence_under_hybrid0(seed, backend):
    graph = erdos_renyi_graph(20, 0.25, seed=seed)
    edges = sorted(graph.edges)
    rng = random.Random(777 + seed)
    triples = []
    for _ in range(120):
        u, v = edges[rng.randrange(len(edges))]
        if rng.random() < 0.5:
            u, v = v, u
        triples.append((u, v, ("p", rng.randrange(50))))

    def run(runner):
        sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
        delivered = runner(sim, list(triples))
        return delivered, sim

    plane, plane_sim = run(lambda sim, t: batched_global_exchange(sim, t, tag="h0"))
    reference, reference_sim = run(
        lambda sim, t: _reference_batched_global_exchange(sim, t, tag="h0")
    )
    assert plane == reference
    assert plane_sim.metrics.summary() == reference_sim.metrics.summary()
    for node in plane_sim.nodes:
        assert plane_sim.known_ids(node) == reference_sim.known_ids(node)


def test_exchange_is_collision_proof_for_shared_tags(backend):
    """Foreign traffic sharing BOTH the tag and a receiver no longer leaks."""
    sim = HybridSimulator(path_graph(6), ModelConfig.hybrid())
    sim.global_send_batch([(0, 2, "foreign")], tag="x")
    delivered = batched_global_exchange(sim, [(1, 2, "mine")], tag="x")
    assert delivered == {2: ["mine"]}
    # The foreign record is still delivered and readable from the inbox.
    payloads = [record[1] for record in sim.per_node_inbox(GLOBAL_MODE)[2]]
    assert sorted(payloads, key=str) == ["foreign", "mine"]


def test_exchange_tag_words_charge_only_the_prefix():
    tag = ExchangeTag("kdiss", 12345678)
    assert str(tag) == "kdiss#12345678"
    assert payload_words(tag) == payload_words("kdiss")
    assert ExchangeTag(None, 7).payload_words_override == 0
    # Distinct exchanges never share a tag.
    assert ExchangeTag("x") != ExchangeTag("x")


# ----------------------------------------------------------------------
# Bulk id-native sends: capacity counters, inboxes, knowledge
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_global_plane_and_tuple_sends_are_equivalent(seed, backend):
    graph = erdos_renyi_graph(30, 0.2, seed=seed)
    rng = random.Random(4000 + seed)
    plane_sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=seed)
    tuple_sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=seed)
    indexer = plane_sim.node_indexer()
    nodes = plane_sim.nodes

    budget = plane_sim.global_budget_words()
    tag_words = payload_words("eq")
    for _ in range(4):
        senders, receivers, payloads, sent = [], [], [], {}
        for _ in range(rng.randrange(1, 80)):
            sender = rng.randrange(len(nodes))
            payload = ("v", rng.randrange(100))
            cost = payload_words(payload) + tag_words
            if sent.get(sender, 0) + cost > budget:
                continue  # stay within the strict send budget
            sent[sender] = sent.get(sender, 0) + cost
            senders.append(sender)
            receivers.append(rng.randrange(len(nodes)))
            payloads.append(payload)
        plane_sim.global_send_batch_ids(senders, receivers, payloads, tag="eq")
        tuple_sim.global_send_batch(
            [
                (nodes[senders[i]], nodes[receivers[i]], payloads[i])
                for i in range(len(payloads))
            ],
            tag="eq",
        )
        plane_sim.advance_round()
        tuple_sim.advance_round()
        assert plane_sim.per_node_inbox(GLOBAL_MODE) == tuple_sim.per_node_inbox(GLOBAL_MODE)
        assert plane_sim.metrics.summary() == tuple_sim.metrics.summary()
        for node in nodes:
            assert plane_sim.inbox(node) == tuple_sim.inbox(node)
    assert indexer[nodes[5]] == 5


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_plane_sends_record_overloads_like_tuple_sends(seed, backend):
    """Receive-side overload: same violation count through both paths."""
    graph = path_graph(40)
    budget = HybridSimulator(graph, ModelConfig.hybrid()).global_budget_words()
    count = budget + 6
    senders = list(range(1, count + 1))
    receivers = [0] * count
    payloads = ["x"] * count

    plane_sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=seed)
    plane_sim.global_send_batch_ids(senders, receivers, payloads)
    plane_sim.advance_round()

    tuple_sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=seed)
    tuple_sim.global_send_batch((s, 0, "x") for s in senders)
    tuple_sim.advance_round()

    assert plane_sim.metrics.capacity_violations == tuple_sim.metrics.capacity_violations > 0
    assert plane_sim.metrics.summary() == tuple_sim.metrics.summary()


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_local_plane_and_tuple_sends_are_equivalent(seed, backend):
    graph = erdos_renyi_graph(25, 0.25, seed=seed)
    rng = random.Random(6000 + seed)
    plane_sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=seed)
    tuple_sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=seed)
    nodes = plane_sim.nodes
    indexer = plane_sim.node_indexer()
    edges = sorted(graph.edges)

    for _ in range(3):
        picks = [edges[rng.randrange(len(edges))] for _ in range(rng.randrange(1, 60))]
        picks = [(v, u) if rng.random() < 0.5 else (u, v) for u, v in picks]
        payloads = [("l", rng.randrange(100)) for _ in picks]
        plane_sim.local_send_batch_ids(
            [indexer[u] for u, _ in picks],
            [indexer[v] for _, v in picks],
            payloads,
            tag="lt",
        )
        tuple_sim.local_send_batch(
            [(u, v, payloads[i]) for i, (u, v) in enumerate(picks)], tag="lt"
        )
        plane_sim.advance_round()
        tuple_sim.advance_round()
        assert plane_sim.per_node_inbox(LOCAL_MODE) == tuple_sim.per_node_inbox(LOCAL_MODE)
        assert plane_sim.metrics.summary() == tuple_sim.metrics.summary()
    assert nodes == tuple_sim.nodes


def test_plane_send_validates_adjacency_and_membership(backend):
    from repro.simulator.errors import NotANeighborError, UnknownNodeError

    sim = HybridSimulator(path_graph(5), ModelConfig.hybrid())
    with pytest.raises(NotANeighborError):
        sim.local_send_batch_ids([0], [3], ["x"])
    with pytest.raises(UnknownNodeError):
        sim.global_send_batch_ids([0], [99], ["x"])
    with pytest.raises(UnknownNodeError):
        sim.global_send_batch_ids([-1], [2], ["x"])
    # Nothing was queued by the failed validations.
    sim.advance_round()
    assert sim.metrics.global_messages == 0
    assert sim.metrics.local_messages == 0


def test_plane_send_enforces_hybrid0_knowledge(backend):
    from repro.simulator.errors import UnknownIdentifierError

    sim = HybridSimulator(path_graph(6), ModelConfig.hybrid0(), seed=1)
    indexer = sim.node_indexer()
    with pytest.raises(UnknownIdentifierError):
        sim.global_send_batch_ids([indexer[0]], [indexer[5]], ["x"])
    # Neighbors are known from round zero; repeated pairs hit the memo.
    for _ in range(2):
        sim.global_send_batch_ids([indexer[0]], [indexer[1]], ["x"])
        sim.advance_round()
    assert sim.metrics.global_messages == 2


# ----------------------------------------------------------------------
# End-to-end: the three engines agree on a full algorithm run
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["batch", "batch-reference", "legacy"])
def test_dissemination_engines_agree_on_pinned_instance(engine, backend):
    from repro.core.dissemination import KDissemination

    graph = path_graph(30)
    rng = random.Random(5)
    tokens = {}
    for index in range(16):
        tokens.setdefault(rng.randrange(30), []).append(("tok", index))
    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=5)
    result = KDissemination(sim, tokens, engine=engine).run()
    assert result.all_nodes_know_all_tokens()
    assert result.metrics.capacity_violations == 0
    summary = result.metrics.summary()
    # All engines and both backends must produce this exact summary; pin the
    # discriminating fields against cross-engine drift.
    assert summary["measured_rounds"] == summary["measured_rounds"]
    key = (
        summary["measured_rounds"],
        summary["total_rounds"],
        summary["global_messages"],
        summary["global_words"],
    )
    pinned = getattr(test_dissemination_engines_agree_on_pinned_instance, "_pin", None)
    if pinned is None:
        test_dissemination_engines_agree_on_pinned_instance._pin = key
    else:
        assert key == pinned, f"engine={engine} backend={backend} drifted: {key} != {pinned}"


# ----------------------------------------------------------------------
# Fault layer off == fault layer absent (the empty-schedule invariant)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shape", sorted(WORKLOADS))
@pytest.mark.parametrize("seed", SEEDS[:3])
def test_empty_fault_schedule_leaves_schedules_identical(shape, seed, backend):
    """An empty FaultSchedule must not perturb the engine in any way.

    The fault layer's hard invariant: installing an empty schedule creates no
    fault state, so exchanges stay token-for-token schedule-identical to the
    greedy reference and metrics/inboxes stay bit-identical to a simulator
    constructed without the keyword at all.
    """
    from repro.simulator.faults import FaultSchedule

    rng = random.Random(hash(("faultfree", shape, seed)) & 0xFFFFFF)
    n = 24
    senders, receivers, words = WORKLOADS[shape](rng, n)
    triples = [
        (senders[i], receivers[i], ("m", i, "x" * (words[i] * 8 - 8)))
        for i in range(len(words))
    ]
    graph = path_graph(n)
    config = ModelConfig(strict=False)  # oversized shapes overload by design

    def run(**kwargs):
        sim = HybridSimulator(graph, config, seed=seed, **kwargs)
        delivered = batched_global_exchange(sim, list(triples), tag="ef")
        return sim, delivered

    bare_sim, bare_delivered = run()
    empty_sim, empty_delivered = run(fault_schedule=FaultSchedule(seed=seed + 1))
    assert empty_sim.fault_state is None
    assert empty_delivered == bare_delivered
    assert empty_sim.metrics.summary() == bare_sim.metrics.summary()
    assert empty_sim.metrics.dropped_messages == 0
    assert empty_sim.metrics.crashed_node_rounds == 0
