"""Analytic round bounds of the prior (existentially optimal) algorithms.

The paper's Tables 1-4 and Figure 1 compare round complexities as functions of
``n``, ``k``, ``l`` and ``D``.  The prior-work rows of those tables are
asymptotic bounds, not runnable systems; this module turns each of them into a
concrete formula (polylog factors instantiated as ``ceil(log2 n)`` powers) so
the benchmark tables can print "new algorithm (measured) vs. prior bound
(analytic)" side by side — exactly the comparison the paper makes.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.simulator.config import log2_ceil

__all__ = ["ExistentialBounds"]


class ExistentialBounds:
    """Round bounds of prior HYBRID-model algorithms (Tables 1-4, Figure 1)."""

    # ------------------------------------------------------------------
    # Table 1: information dissemination
    # ------------------------------------------------------------------
    @staticmethod
    def broadcast_ahk20(n: int, k: int, max_initial_per_node: int = 1) -> float:
        """[AHK+20]: k-dissemination / aggregation in eO(sqrt(k) + l) rounds."""
        return math.sqrt(max(k, 1)) + max_initial_per_node

    @staticmethod
    def unicast_ks20(n: int, k: int, l: int) -> float:
        """[KS20]: (k, l)-routing in eO(sqrt(k) + k*l/n) rounds."""
        return math.sqrt(max(k, 1)) + (k * l) / max(n, 1)

    @staticmethod
    def dissemination_lower_bound_existential(k: int) -> float:
        """The existential lower bound eOmega(sqrt(k)) [Sch23]."""
        return math.sqrt(max(k, 1))

    # ------------------------------------------------------------------
    # Table 2: APSP
    # ------------------------------------------------------------------
    @staticmethod
    def apsp_sqrt_n(n: int) -> float:
        """[KS20] / [AG21a]: exact or O(log n / log log n)-approx APSP in eO(sqrt n)."""
        return math.sqrt(max(n, 1))

    # ------------------------------------------------------------------
    # Table 3 / Figure 1: k-SSP
    # ------------------------------------------------------------------
    @staticmethod
    def ksp_lower_bound(k: int) -> float:
        """[KS20]: eOmega(sqrt k) even for (k, 1)-SP with O(sqrt n) stretch."""
        return math.sqrt(max(k, 1))

    @staticmethod
    def ksp_chlp21(n: int, k: int) -> float:
        """[CHLP21a]: exact k-SSP in eO(n^{1/3} + sqrt k)."""
        return max(n, 1) ** (1.0 / 3.0) + math.sqrt(max(k, 1))

    @staticmethod
    def ksp_this_work(k: int) -> float:
        """Theorem 14: constant-approximation k-SSP in eO(sqrt k)."""
        return math.sqrt(max(k, 1))

    # ------------------------------------------------------------------
    # Table 4: SSSP
    # ------------------------------------------------------------------
    @staticmethod
    def sssp_ag21(n: int) -> float:
        """[AG21a]: (log n / log log n)-approx SSSP in eO(n^{1/2})."""
        return math.sqrt(max(n, 1))

    @staticmethod
    def sssp_chlp21(n: int) -> float:
        """[CHLP21b]: (1+eps)-approx SSSP in eO(n^{5/17})."""
        return max(n, 1) ** (5.0 / 17.0)

    @staticmethod
    def sssp_ahk20(n: int, eps: float = 1.0 / 3.0) -> float:
        """[AHK+20]: (1/eps)^O(1/eps)-approx SSSP in eO(n^eps)."""
        return max(n, 1) ** eps

    @staticmethod
    def sssp_this_work(n: int, eps: float) -> float:
        """Theorem 13: (1+eps)-approx SSSP in eO(1/eps^2) = polylog rounds."""
        log_n = log2_ceil(max(n, 2))
        return (1.0 / (max(eps, 1e-9) ** 2)) * log_n

    # ------------------------------------------------------------------
    # Universal bounds of this paper (for reference columns)
    # ------------------------------------------------------------------
    @staticmethod
    def universal_upper_bound(nq: int, n: int) -> float:
        """Theorems 1-3, 5-7: eO(NQ_k) with the polylog instantiated as log^2 n."""
        log_n = log2_ceil(max(n, 2))
        return max(nq, 1) * log_n * log_n

    @staticmethod
    def universal_lower_bound(nq: int, n: int) -> float:
        """Theorem 4 / 10-12: eOmega(NQ_k); polylog divided out as log^2 n."""
        log_n = log2_ceil(max(n, 2))
        return max(nq, 1) / float(log_n * log_n)
