"""Universal lower bounds (Section 7, Appendix C).

The paper's lower bounds are information-theoretic theorems; this subpackage
reproduces them as *computable bound estimators*: given a concrete graph and
problem parameters, it constructs the node-communication instance the proofs
build (Lemma 7.2, Lemma 7.4) and evaluates the resulting round lower bound
(Lemma 7.1).  The benchmarks check that the measured rounds of the upper-bound
algorithms are consistent with these lower bounds.
"""

from repro.lowerbounds.node_communication import (
    NodeCommunicationInstance,
    node_communication_lower_bound,
)
from repro.lowerbounds.universal import (
    dissemination_lower_bound,
    routing_lower_bound,
    shortest_paths_lower_bound,
    bcc_simulation_lower_bound,
    UniversalLowerBound,
)

__all__ = [
    "NodeCommunicationInstance",
    "node_communication_lower_bound",
    "dissemination_lower_bound",
    "routing_lower_bound",
    "shortest_paths_lower_bound",
    "bcc_simulation_lower_bound",
    "UniversalLowerBound",
]
