"""Result-table rendering for the benchmark harness.

Every benchmark produces a list of :class:`ExperimentRow`; the helpers here
render them as aligned ASCII tables (printed by the benches, captured into
``bench_output.txt``) and as Markdown (pasted into EXPERIMENTS.md).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterable, List, Optional, Sequence

__all__ = ["ExperimentRow", "render_table", "rows_to_markdown"]


@dataclasses.dataclass
class ExperimentRow:
    """One row of a reproduced table/figure: an ordered mapping of column -> value."""

    values: Dict[str, Any]

    def columns(self) -> List[str]:
        return list(self.values)

    def formatted(self, column: str) -> str:
        value = self.values.get(column, "")
        if isinstance(value, float):
            if value == int(value) and abs(value) < 1e9:
                return str(int(value))
            return f"{value:.3g}"
        return str(value)


def _column_order(rows: Sequence[ExperimentRow]) -> List[str]:
    order: List[str] = []
    for row in rows:
        for column in row.columns():
            if column not in order:
                order.append(column)
    return order


def render_table(rows: Sequence[ExperimentRow], title: Optional[str] = None) -> str:
    """Render rows as an aligned ASCII table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    columns = _column_order(rows)
    widths = {column: len(column) for column in columns}
    for row in rows:
        for column in columns:
            widths[column] = max(widths[column], len(row.formatted(column)))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    separator = "-+-".join("-" * widths[column] for column in columns)
    lines.append(header)
    lines.append(separator)
    for row in rows:
        lines.append(
            " | ".join(row.formatted(column).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def rows_to_markdown(rows: Sequence[ExperimentRow], title: Optional[str] = None) -> str:
    """Render rows as a GitHub-flavoured Markdown table."""
    if not rows:
        return (f"### {title}\n\n" if title else "") + "_no rows_"
    columns = _column_order(rows)
    lines: List[str] = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(columns) + " |")
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for row in rows:
        lines.append("| " + " | ".join(row.formatted(column) for column in columns) + " |")
    return "\n".join(lines)
