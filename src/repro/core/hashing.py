"""kappa-wise independent hashing for intermediate-node routing (Lemma 5.3).

The (k,l)-routing algorithm relays every (source, target) message pair through
a pseudo-random intermediate node ``h(ID(s), ID(t))`` so that senders and
receivers never have to exchange their helper sets explicitly.  Lemma 5.3 asks
for a hash family that is ``kappa``-wise independent with
``kappa = Theta(NQ_k log n)``, which bounds (w.h.p.) both the number of pairs
mapped to any single node (``O(NQ_k)``) and the number of simultaneous
requests any node receives (``O(log n)``).

We implement the standard construction: a random polynomial of degree
``kappa - 1`` over a prime field ``F_p`` with ``p > n^2``, evaluated at the
encoded pair ``ID(s) * n + ID(t)`` and reduced modulo the number of nodes.  The
seed consists of ``kappa`` field elements, i.e. ``Theta(kappa)`` words — this is
the quantity charged for broadcasting the seed (via Theorem 1) in the routing
algorithm.
"""

from __future__ import annotations

import random
from typing import List, Optional

__all__ = ["PairwiseHash", "next_prime"]


def _is_prime(value: int) -> bool:
    if value < 2:
        return False
    if value % 2 == 0:
        return value == 2
    divisor = 3
    while divisor * divisor <= value:
        if value % divisor == 0:
            return False
        divisor += 2
    return True


def next_prime(value: int) -> int:
    """Smallest prime >= value (trial division; inputs here are small)."""
    candidate = max(2, value)
    while not _is_prime(candidate):
        candidate += 1
    return candidate


class PairwiseHash:
    """A kappa-wise independent hash ``h : [U] x [U] -> [m]``.

    Parameters
    ----------
    universe:
        Upper bound (exclusive) on the identifiers being hashed.
    buckets:
        Size of the range ``m`` (the number of nodes).
    independence:
        ``kappa``; the polynomial degree is ``kappa - 1``.
    seed:
        Seed for drawing the polynomial coefficients.
    """

    def __init__(
        self, universe: int, buckets: int, independence: int, seed: Optional[int] = None
    ) -> None:
        if universe < 1:
            raise ValueError("universe must be positive")
        if buckets < 1:
            raise ValueError("buckets must be positive")
        if independence < 1:
            raise ValueError("independence must be at least 1")
        self.universe = universe
        self.buckets = buckets
        self.independence = independence
        self.prime = next_prime(max(universe * universe + 1, buckets + 1, 11))
        rng = random.Random(seed)
        self.coefficients: List[int] = [rng.randrange(self.prime) for _ in range(independence)]
        if independence > 1 and self.coefficients[-1] == 0:
            self.coefficients[-1] = 1  # keep the polynomial of full degree

    # ------------------------------------------------------------------
    @property
    def seed_words(self) -> int:
        """Size of the seed in O(log n)-bit words (one word per coefficient)."""
        return len(self.coefficients)

    def _evaluate(self, x: int) -> int:
        result = 0
        for coefficient in reversed(self.coefficients):
            result = (result * x + coefficient) % self.prime
        return result

    def __call__(self, i: int, j: int) -> int:
        """Hash the pair ``(i, j)`` to a bucket in ``[0, buckets)``."""
        if i < 0 or j < 0:
            raise ValueError("identifiers must be non-negative")
        encoded = (i % self.universe) * self.universe + (j % self.universe)
        return self._evaluate(encoded) % self.buckets

    def bucket_of(self, encoded: int) -> int:
        return self._evaluate(encoded) % self.buckets
