"""Equivalence harness for the batch-native shortest-paths pipeline (PR 3).

Three layers of cross-validation over six graph families x three seeds:

* **engine equivalence** — every algorithm of the shortest-paths stack
  (UnweightedApproxAPSP, SpannerAPSP, SkeletonAPSP, KSourceShortestPaths,
  KLShortestPaths, the BCC bridge) produces *identical* results and identical
  metrics summaries under ``engine="batch"`` and ``engine="legacy"``;
* **dense-vs-reference equivalence** — the :class:`DenseDistanceTable`
  assembled from GraphIndex flat-array sweeps equals, entry for entry, the
  dict-BFS formulation of Algorithm 3 that the seed implementation used;
* **primitive equivalence** — the index-backed graph primitives
  (``weak_diameter``, ``h_hop_limited_distances``, ``all_hop_distances``)
  equal their ``_reference_*`` ground-truth counterparts exactly.
"""

import math
import random

import pytest

from repro.core.bcc import BCCBroadcast, BCCSimulator
from repro.core.ksp import KSourceShortestPaths
from repro.core.shortest_paths import (
    DenseDistanceTable,
    KLShortestPaths,
    SkeletonAPSP,
    SpannerAPSP,
    UnweightedApproxAPSP,
)
from repro.core.sssp import approx_sssp_distances
from repro.graphs.generators import (
    barbell_graph,
    broom_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
)
from repro.graphs.properties import (
    _reference_all_hop_distances,
    _reference_h_hop_limited_distances,
    _reference_weak_diameter,
    all_hop_distances,
    h_hop_limited_distances,
    hop_distances_from,
    weak_diameter,
)
from repro.graphs.weighted import assign_random_weights, unit_weights
from repro.simulator.config import ModelConfig
from repro.simulator.network import HybridSimulator

SEEDS = [0, 1, 2]

GRAPH_FAMILIES = {
    "path": lambda seed: path_graph(30),
    "cycle": lambda seed: cycle_graph(30),
    "grid": lambda seed: grid_graph(6, 2),
    "barbell": lambda seed: barbell_graph(8, 12),
    "broom": lambda seed: broom_graph(18, 10),
    "erdos_renyi": lambda seed: erdos_renyi_graph(30, 0.12, seed=seed),
}

CASES = [(family, seed) for family in sorted(GRAPH_FAMILIES) for seed in SEEDS]


def _ids(case):
    family, seed = case
    return f"{family}-s{seed}"


# ----------------------------------------------------------------------
# Unweighted APSP: batch == legacy == the dict-BFS reference pipeline
# ----------------------------------------------------------------------
def _reference_algorithm3_estimates(graph, sim, algorithm):
    """Algorithm 3 computed the pre-index way: one dict BFS per node, one
    weight-rounded Dijkstra per cluster leader — the seed formulation."""
    leaders = algorithm.clustering.leaders()
    epsilon = algorithm.epsilon
    x = algorithm.x
    hop_tables = {v: hop_distances_from(graph, v) for v in sim.nodes}
    leader_estimates = {
        leader: approx_sssp_distances(graph, leader, epsilon) for leader in leaders
    }
    closest_leader = {}
    for v in sim.nodes:
        hops = hop_tables[v]
        best = min(leaders, key=lambda r: (hops.get(r, math.inf), str(r)))
        closest_leader[v] = (best, hops.get(best, math.inf))
    estimates = {}
    for v in sim.nodes:
        hops_v = hop_tables[v]
        row = {}
        for w in sim.nodes:
            direct = hops_v.get(w, math.inf)
            if direct <= x:
                row[w] = float(direct)
            else:
                c_w, d_w_cw = closest_leader[w]
                row[w] = leader_estimates[c_w].get(v, math.inf) + d_w_cw
        estimates[v] = row
    return estimates


@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_apsp_engines_and_reference_pipeline_agree(case):
    family, seed = case
    graph = unit_weights(GRAPH_FAMILIES[family](seed))

    def run(engine):
        sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
        algorithm = UnweightedApproxAPSP(sim, epsilon=0.5, engine=engine)
        return algorithm, algorithm.run(), sim

    batch_algo, batch, batch_sim = run("batch")
    _, legacy, _ = run("legacy")

    assert isinstance(batch, DenseDistanceTable)
    assert batch.metrics.summary() == legacy.metrics.summary()
    assert batch.estimates == legacy.estimates
    assert batch_sim.metrics.capacity_violations == 0

    expected = _reference_algorithm3_estimates(graph, batch_sim, batch_algo)
    assert batch.estimates == expected


def test_apsp_leader_fallback_branch_matches_reference():
    """Force ``x`` below the diameter so far pairs take the closest-leader
    estimate branch of the dense row assembly.

    On every small instance (and on the benchmark graphs) ``x = ceil(4 NQ_n
    log n / eps)`` exceeds the diameter, so the direct-hop branch answers all
    pairs and the fallback arm would otherwise go untested until n is large
    enough for ``x < D``."""

    class SmallXAPSP(UnweightedApproxAPSP):
        def _phase_local_exploration(self):
            super()._phase_local_exploration()
            self.x = 3

    for graph in (
        unit_weights(path_graph(30)),  # dense hop-row arm
        assign_random_weights(path_graph(30), max_weight=5, seed=2),  # Dijkstra arm
    ):
        sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=2)
        algorithm = SmallXAPSP(sim, epsilon=0.5)
        table = algorithm.run()
        assert algorithm.x == 3 < 29  # far pairs exist: the fallback fires
        expected = _reference_algorithm3_estimates(graph, sim, algorithm)
        assert table.estimates == expected


def test_apsp_weighted_fallback_matches_reference():
    """On a (non-unit) weighted graph the leader estimates fall back to the
    weight-rounded Dijkstra; the dense rows must still equal the reference."""
    graph = assign_random_weights(grid_graph(5, 2), max_weight=7, seed=3)
    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=3)
    algorithm = UnweightedApproxAPSP(sim, epsilon=0.5)
    table = algorithm.run()
    expected = _reference_algorithm3_estimates(graph, sim, algorithm)
    assert table.estimates == expected


def test_dense_table_api_is_consistent():
    graph = unit_weights(grid_graph(4, 2))
    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=0)
    table = UnweightedApproxAPSP(sim, epsilon=0.5).run()
    assert set(table.targets()) == set(graph.nodes)
    assert set(table.columns()) == set(graph.nodes)
    for target in table.targets():
        row = table.row(target)
        assert len(row) == len(table.columns())
        for source, value in zip(table.columns(), row):
            assert table.estimate(target, source) == value
            assert table.estimates[target][source] == value
    # weak_diameter contract: wrong-node queries raise instead of silently
    # answering inf; inf is reserved for computed-but-unreachable pairs.
    with pytest.raises(KeyError):
        table.estimate("missing", 0)
    with pytest.raises(KeyError):
        table.estimate(0, "missing")
    with pytest.raises(KeyError):
        table.row("missing")


# ----------------------------------------------------------------------
# k-SP / (k, l)-SP / weighted APSP: batch == legacy exactly
# ----------------------------------------------------------------------
@pytest.mark.parametrize("in_skeleton", [True, False], ids=["skel", "arb"])
@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_ksp_engines_agree_exactly(case, in_skeleton):
    family, seed = case
    graph = assign_random_weights(GRAPH_FAMILIES[family](seed), max_weight=9, seed=seed)
    rng = random.Random(400 + seed)
    sources = rng.sample(sorted(graph.nodes), 4)

    def run(engine):
        sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=seed)
        result = KSourceShortestPaths(
            sim,
            sources,
            epsilon=0.25,
            sources_in_skeleton=in_skeleton,
            seed=seed,
            engine=engine,
        ).run()
        return result, sim

    batch, batch_sim = run("batch")
    legacy, legacy_sim = run("legacy")
    assert batch.distances == legacy.distances
    assert batch.proxy_of == legacy.proxy_of
    assert batch_sim.metrics.summary() == legacy_sim.metrics.summary()


@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_klsp_engines_agree_exactly(case):
    family, seed = case
    graph = assign_random_weights(GRAPH_FAMILIES[family](seed), max_weight=9, seed=seed)
    rng = random.Random(500 + seed)
    nodes = sorted(graph.nodes)
    sources = rng.sample(nodes, 4)
    targets = rng.sample(nodes, 3)

    def run(engine):
        sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=seed)
        table = KLShortestPaths(
            sim, sources, targets, epsilon=0.25, seed=seed, engine=engine
        ).run()
        return table, sim

    batch, batch_sim = run("batch")
    legacy, legacy_sim = run("legacy")
    assert batch.estimates == legacy.estimates
    assert batch_sim.metrics.summary() == legacy_sim.metrics.summary()


@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_weighted_apsp_engines_agree_exactly(case):
    family, seed = case
    graph = assign_random_weights(GRAPH_FAMILIES[family](seed), max_weight=9, seed=seed)

    for algorithm_factory in (
        lambda sim, engine: SpannerAPSP(sim, epsilon=0.5, engine=engine),
        lambda sim, engine: SkeletonAPSP(sim, alpha=1, seed=seed, engine=engine),
    ):
        def run(engine):
            sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
            return algorithm_factory(sim, engine).run(), sim

        batch, batch_sim = run("batch")
        legacy, legacy_sim = run("legacy")
        assert batch.estimates == legacy.estimates
        assert batch_sim.metrics.summary() == legacy_sim.metrics.summary()


# ----------------------------------------------------------------------
# BCC bridge: batch == legacy == the broadcast vector itself
# ----------------------------------------------------------------------
@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_bcc_engines_agree_and_deliver_everything(case):
    family, seed = case
    graph = GRAPH_FAMILIES[family](seed)
    schedule = [
        {v: ("round0", v) for v in graph.nodes},
        {v: ("round1", str(v)) for v in graph.nodes},
    ]

    def run(engine):
        sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
        return BCCBroadcast(sim, schedule, engine=engine).run(), sim

    batch, batch_sim = run("batch")
    legacy, legacy_sim = run("legacy")
    assert batch.all_rounds_complete()
    assert batch_sim.metrics.summary() == legacy_sim.metrics.summary()
    for batch_round, legacy_round, broadcasts in zip(
        batch.rounds, legacy.rounds, schedule
    ):
        assert batch_round.received == legacy_round.received
        for view in batch_round.received.values():
            assert view == broadcasts


def test_bcc_simulator_engines_agree():
    graph = grid_graph(5, 2)
    broadcasts = {v: v * 3 for v in graph.nodes}

    def run(engine):
        sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=1)
        return BCCSimulator(sim, engine=engine).simulate_round(broadcasts), sim

    batch, batch_sim = run("batch")
    legacy, legacy_sim = run("legacy")
    assert batch.received == legacy.received
    assert batch.rounds_used == legacy.rounds_used
    assert batch_sim.metrics.summary() == legacy_sim.metrics.summary()


# ----------------------------------------------------------------------
# Index-backed primitives == their _reference_* ground truth
# ----------------------------------------------------------------------
@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_weak_diameter_fast_equals_reference(case):
    family, seed = case
    graph = GRAPH_FAMILIES[family](seed)
    rng = random.Random(600 + seed)
    nodes = sorted(graph.nodes)
    member_sets = [
        nodes,  # the whole graph (weak diameter == diameter)
        rng.sample(nodes, 2),
        rng.sample(nodes, max(3, len(nodes) // 4)),
        rng.sample(nodes, max(4, len(nodes) // 2)),
    ]
    for members in member_sets:
        assert weak_diameter(graph, members) == _reference_weak_diameter(
            graph, members
        ), f"{family} seed {seed}: weak diameter diverged on {members!r}"


@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_h_hop_limited_distances_fast_equals_reference(case):
    family, seed = case
    graph = assign_random_weights(GRAPH_FAMILIES[family](seed), max_weight=9, seed=seed)
    rng = random.Random(700 + seed)
    sources = rng.sample(sorted(graph.nodes), 4)
    for source in sources:
        for h in (0, 1, 3, 8):
            assert h_hop_limited_distances(graph, source, h) == (
                _reference_h_hop_limited_distances(graph, source, h)
            )


@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_all_hop_distances_fast_equals_reference(case):
    family, seed = case
    graph = GRAPH_FAMILIES[family](seed)
    assert all_hop_distances(graph) == _reference_all_hop_distances(graph)
